/**
 * @file
 * SimConfig: the scenario-file model of the batch simulation engine.
 *
 * A scenario file is a small INI document describing one experiment
 * campaign: global settings, one or more device *variants* (each a
 * full pLUTo configuration: memory kind, design, SALP width, tFAW
 * scale, refresh modeling, LUT load method), and a list of workloads
 * with input sizes and repeat counts. The engine runs the cross
 * product variants x workloads x repeats.
 *
 * Grammar (line oriented; '#' and ';' start comments):
 *
 *   [scenario]            global settings (name, out_dir, repeats)
 *   [device]              defaults inherited by every variant
 *   [variant NAME]        one device configuration (overrides [device])
 *   [workload NAME]       one workload entry (NAME is a registry name)
 *
 * v2 adds parameter grids: inside [device] / [variant] sections any
 * device key may be swept, and inside [workload] sections `elements`
 * and `seed` may be swept:
 *
 *   sweep KEY = v1, v2, v3
 *
 * v3 adds the service layer: [service NAME] sections describe
 * request-level serving experiments (open/closed-loop load, batching
 * policy, device pool size) executed by src/serve/ in `pluto_sim
 * --service` mode. Every service key is sweepable, so one file
 * expresses a saturation curve (`sweep rate = ...`). Workload
 * sections double as the request mix in service mode, weighted by
 * `weight` and attributed to `tenant`.
 *
 * v4 adds the NN campaign: [nn NAME] sections describe quantized
 * LeNet-5 inference cells (`bits`, `images`, `seed` — all sweepable)
 * executed by src/nn/ in `pluto_sim --nn` mode. A scenario may be
 * nn-only: [workload] sections are required only when a mode that
 * consumes them (batch, service) will run.
 *
 * Each section expands into the cross product of its sweep lists (in
 * declaration order, first key slowest), so one file expresses a
 * Figure-13-style campaign. Expanded variants are named
 * `base/key=value/...`; [device]-level sweeps are inherited by every
 * variant that neither sets nor sweeps the same key itself.
 *
 * Parsing is total and non-fatal: malformed input (including bad
 * grid syntax, empty sweep lists and duplicate sweep keys) yields an
 * error message with a line number, never an exit, so config
 * mistakes in batch campaigns surface as clean diagnostics.
 */

#ifndef PLUTO_SIM_CONFIG_HH
#define PLUTO_SIM_CONFIG_HH

#include <optional>
#include <string>
#include <vector>

#include "runtime/device.hh"

namespace pluto::sim
{

/** One named device configuration (a scenario variant). */
struct DeviceSpec
{
    /** Variant label used in reports ("bsa-ddr4", ...). */
    std::string name;
    /** Full device construction parameters. */
    runtime::DeviceConfig config;
};

/** One workload entry of a scenario. */
struct WorkloadSpec
{
    /** Registry name ("CRC-8", "ColorGrade", ...). */
    std::string name;
    /** Input size; 0 = the workload's paper-scale default. */
    u64 elements = 0;
    /** Runs of this workload per variant. */
    u32 repeats = 1;
    /** Input-generation seed (0 = the historical fixed inputs). */
    u64 seed = 0;
    /** Service mode: tenant this request class is attributed to. */
    u32 tenant = 0;
    /** Service mode: relative weight in the request mix. */
    double weight = 1.0;
    /** Service mode: per-class SLO override, ms (0 = service SLO). */
    double sloMs = 0.0;
};

/** Batching policy of a service section. */
enum class BatchPolicyKind
{
    /** No batching: serve one request at a time. */
    Immediate,
    /** Wait until `batch` same-class requests queue, then serve. */
    FixedSize,
    /** Serve once the oldest queued request waited `window_ms`. */
    TimeWindow,
    /** Drain the whole eligible queue prefix, up to `batch`. */
    Adaptive,
};

/** @return the INI spelling of a batching policy. */
const char *batchPolicyName(BatchPolicyKind kind);

/** Batch-signature memoization mode of a service section. */
enum class MemoMode
{
    /** Replay the recorded delta bundle on every signature hit. */
    On,
    /** Execute the real device scheduler for every batch (oracle). */
    Off,
    /** Replay, but re-execute a deterministic 1-in-N sample of hits
        and abort if the fresh bundle differs from the cached one. */
    Verify,
};

/** @return the INI spelling of a memoization mode. */
const char *memoModeName(MemoMode mode);

/**
 * One request-level serving experiment (a [service NAME] section).
 * Runs against every device variant of the scenario; the scenario's
 * [workload] entries are the request mix.
 */
struct ServiceSpec
{
    /** Service label used in reports ("sat/rate=2000", ...). */
    std::string name;
    /** Closed-loop (clients + think time) vs open-loop arrivals. */
    bool closedLoop = false;
    /** Open loop: deterministic uniform spacing vs seeded Poisson. */
    bool uniformArrivals = false;
    /** Open loop: offered arrival rate, requests per second. */
    double ratePerSec = 1000.0;
    /** Open loop: arrival window, simulated milliseconds. */
    double durationMs = 100.0;
    /** Closed loop: client population. */
    u32 clients = 8;
    /** Closed loop: mean think time, simulated milliseconds. */
    double thinkMs = 1.0;
    /** Batching policy of every device queue. */
    BatchPolicyKind policy = BatchPolicyKind::Immediate;
    /** Fixed batch size / adaptive and window batch cap. */
    u32 batch = 8;
    /** TimeWindow policy: max wait of the oldest request, ms. */
    double windowMs = 0.05;
    /** Simulated device pool size. */
    u32 devices = 1;
    /** SALP lanes one request occupies in a lock-step wave. */
    u32 lanes = 16;
    /** Load-generation seed (arrival draws and mix choices). */
    u64 seed = 1;
    /** Latency SLO, ms (0 = no SLO tracking). Sweepable. */
    double sloMs = 0.0;
    /** SLO attainment target in (0,1); feeds the burn rate. */
    double sloTarget = 0.99;
    /** Tail-blame cutoff quantile in (0,1) (--tail-report). */
    double tailQuantile = 0.99;
    /**
     * Zipf exponent of the tenant draw (0 = uniform weight draw).
     * With skew s > 0, the distinct tenant ids of the mix are ranked
     * ascending (lowest id = hottest) and a request's tenant is drawn
     * Zipf(s) over the ranks before the class draw within the tenant.
     */
    double tenantSkew = 0.0;
    /** Virtual-time series window, ms (--timeseries). */
    double timeseriesMs = 1.0;
    /** Batch-signature memoization mode (`memo = on|off|verify`). */
    MemoMode memo = MemoMode::On;
};

/**
 * One quantized-NN inference experiment (an [nn NAME] section). Runs
 * against every device variant of the scenario in `pluto_sim --nn`
 * mode: a batch of `images` synthetic MNIST digits is classified by
 * a quantized LeNet-5 and the inference cost is charged through the
 * device's query engine. Every key is sweepable, so one file
 * expresses a batch-size x quantization x device grid.
 */
struct NnSpec
{
    /** Cell label used in reports ("lenet5/bits=1", ...). */
    std::string name;
    /** Quantization width: 1 (binary) or 4. */
    u32 bits = 1;
    /** Images classified per cell (the inference batch size). */
    u32 images = 8;
    /** Weight- and image-generation seed. */
    u64 seed = 5;
};

/** A parsed scenario. */
struct SimConfig
{
    /** Campaign name; prefixes every output file. */
    std::string name = "scenario";
    /** Directory receiving CSV/JSON outputs. */
    std::string outDir = "results";
    /** Global repeat multiplier applied to every workload. */
    u32 repeats = 1;
    /** Device variants (at least one after a successful parse). */
    std::vector<DeviceSpec> devices;
    /** Workload list (at least one after a successful parse). */
    std::vector<WorkloadSpec> workloads;
    /** Serving experiments (may be empty; used by --service mode). */
    std::vector<ServiceSpec> services;
    /** NN inference experiments (may be empty; used by --nn mode). */
    std::vector<NnSpec> nnCells;

    /** @return total number of runs the scenario describes. */
    u64 totalRuns() const;

    /** @return variant x service cell count of --service mode. */
    u64 totalServiceRuns() const;

    /** @return variant x nn cell count of --nn mode. */
    u64 totalNnRuns() const;

    /**
     * Parse scenario `text`. On failure @return std::nullopt and set
     * `error` to a "line N: ..." diagnostic.
     */
    static std::optional<SimConfig> parse(const std::string &text,
                                          std::string &error);

    /** Load and parse the file at `path`. */
    static std::optional<SimConfig> load(const std::string &path,
                                         std::string &error);
};

} // namespace pluto::sim

#endif // PLUTO_SIM_CONFIG_HH
