/**
 * @file
 * MetricsSink: renders a ScenarioReport as a per-run CSV table and an
 * aggregated JSON summary (mean timing/energy and baseline speedups
 * per variant x workload, geomean speedups per variant), and writes
 * both under the scenario's output directory.
 */

#ifndef PLUTO_SIM_METRICS_HH
#define PLUTO_SIM_METRICS_HH

#include <string>
#include <vector>

#include "sim/runner.hh"

namespace pluto::sim
{

/**
 * Mean-aggregated repeats of one (variant, workload, elements) cell.
 * The same workload may appear at several sizes; each size is its own
 * cell.
 */
struct CellSummary
{
    std::string variant;
    std::string workload;
    u64 elements = 0;
    /** Input-generation seed of the folded runs. */
    u64 seed = 0;
    /** Runs folded into this cell. */
    u64 runs = 0;
    /** Every folded run passed functional verification. */
    bool verified = false;
    double meanTimeNs = 0.0;
    double meanEnergyPj = 0.0;
    double nsPerElem = 0.0;
    double pjPerElem = 0.0;
    /** Total host wall-clock of the folded runs, milliseconds. */
    double wallMs = 0.0;
    /** Host baseline rates of the cell's workload. */
    workloads::BaselineRates rates;
};

/** Output writer for one scenario's results. */
class MetricsSink
{
  public:
    /** Column names of the per-run CSV, in order. */
    static std::vector<std::string> csvColumns();

    /**
     * Fold repeats into per-cell means, preserving first-appearance
     * order. Shared by the JSON summary and the CLI table.
     */
    static std::vector<CellSummary>
    aggregate(const ScenarioReport &report);

    /** @return the per-run CSV document. */
    static std::string renderCsv(const SimConfig &cfg,
                                 const ScenarioReport &report);

    /** @return the JSON summary document. */
    static std::string renderJson(const SimConfig &cfg,
                                  const ScenarioReport &report);

    /**
     * Write `<outDir>/<name><suffix>_runs.csv` and
     * `<outDir>/<name><suffix>_summary.json` (`suffix` distinguishes
     * shard outputs, e.g. ".shard0of3"). On success @return empty
     * string and append the two paths to `written`; else @return an
     * error description.
     */
    static std::string write(const SimConfig &cfg,
                             const ScenarioReport &report,
                             std::vector<std::string> &written,
                             const std::string &suffix = {});
};

} // namespace pluto::sim

#endif // PLUTO_SIM_METRICS_HH
