/**
 * @file
 * Batch-run cache codec (see cache.hh).
 */

#include "sim/cache.hh"

#include <sstream>

namespace pluto::sim
{

namespace
{

/** Bump when the timing/energy model changes cached semantics. */
constexpr u32 kRunSchema = 2;

} // namespace

std::string
RunCacheCodec::encodeBody(const CachedRun &run)
{
    // Hand-formatted so doubles are written with full (%.17g)
    // precision regardless of the pretty-printer's style.
    std::string body = ",\"elements\":" + std::to_string(run.elements);
    body += ",\"time_ns\":" + fmtDoubleExact(run.timeNs);
    body += ",\"energy_pj\":" + fmtDoubleExact(run.energyPj);
    body += ",\"host_ns\":" + fmtDoubleExact(run.hostNs);
    body += std::string(",\"verified\":") +
            (run.verified ? "true" : "false");
    body += ",\"wall_ms\":" + fmtDoubleExact(run.wallMs);
    return body;
}

bool
RunCacheCodec::decode(const JsonValue &obj, CachedRun &run)
{
    const JsonValue *elements = obj.find("elements");
    const JsonValue *timeNs = obj.find("time_ns");
    const JsonValue *energyPj = obj.find("energy_pj");
    const JsonValue *hostNs = obj.find("host_ns");
    const JsonValue *verified = obj.find("verified");
    const JsonValue *wallMs = obj.find("wall_ms");
    if (!elements || !elements->isNumber() || !timeNs ||
        !timeNs->isNumber() || !energyPj || !energyPj->isNumber() ||
        !hostNs || !hostNs->isNumber() || !verified ||
        !verified->isBool() || !wallMs || !wallMs->isNumber())
        return false;
    run.elements = static_cast<u64>(elements->asNumber());
    run.timeNs = timeNs->asNumber();
    run.energyPj = energyPj->asNumber();
    run.hostNs = hostNs->asNumber();
    run.verified = verified->asBool();
    run.wallMs = wallMs->asNumber();
    return true;
}

void
RunCacheCodec::encodeBinary(const CachedRun &run,
                            campaign::BinWriter &w)
{
    w.putU64(run.elements);
    w.putF64(run.timeNs);
    w.putF64(run.energyPj);
    w.putF64(run.hostNs);
    w.putBool(run.verified);
    w.putF64(run.wallMs);
}

bool
RunCacheCodec::decodeBinary(campaign::BinReader &r, CachedRun &run)
{
    return r.getU64(run.elements) && r.getF64(run.timeNs) &&
           r.getF64(run.energyPj) && r.getF64(run.hostNs) &&
           r.getBool(run.verified) && r.getF64(run.wallMs) &&
           r.atEnd();
}

std::string
RunCache::key(const runtime::DeviceConfig &cfg,
              const std::string &workload, u64 elements, u64 seed,
              u32 repeat)
{
    std::ostringstream d;
    d << 'v' << kRunSchema << '|' << deviceDescriptor(cfg) << '|'
      << workload << '|' << elements << '|' << seed << '|' << repeat;
    return keyFor(d.str());
}

} // namespace pluto::sim
