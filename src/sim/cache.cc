/**
 * @file
 * JSONL run-result cache (see cache.hh).
 */

#include "sim/cache.hh"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/emit.hh"
#include "pluto/design.hh"

namespace pluto::sim
{

namespace
{

/** Bump when the timing/energy model changes cached semantics. */
constexpr u32 kCacheSchema = 1;

u64
fnv1a(const std::string &s)
{
    u64 h = 0xcbf29ce484222325ULL;
    for (const char c : s) {
        h ^= static_cast<u8>(c);
        h *= 0x100000001b3ULL;
    }
    return h;
}

/** %.17g: round-trips any double exactly through strtod. */
std::string
fmtExact(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

} // namespace

std::string
fnv1aHex(const std::string &descriptor)
{
    char buf[20];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(fnv1a(descriptor)));
    return buf;
}

std::string
fmtDoubleExact(double v)
{
    return fmtExact(v);
}

RunCache::RunCache(std::string dir, const std::string &scenario)
    : dir_(std::move(dir)), path_(dir_ + "/" + scenario + ".cache.jsonl")
{
}

std::string
deviceDescriptor(const runtime::DeviceConfig &cfg)
{
    std::ostringstream d;
    d << dram::memoryKindName(cfg.memory) << '|'
      << core::designName(cfg.design) << '|' << cfg.salp << '|'
      << fmtExact(cfg.fawScale) << '|' << cfg.modelRefresh << '|'
      << static_cast<int>(cfg.loadMethod) << '|'
      << fmtExact(cfg.loadModel.memoryBw) << ','
      << fmtExact(cfg.loadModel.storageBw) << ','
      << fmtExact(cfg.loadModel.generateNsPerElem) << ','
      << cfg.loadModel.materializeLimitBytes << '|';
    if (cfg.geometry) {
        const auto &g = *cfg.geometry;
        d << "geom:" << g.banks << ',' << g.subarraysPerBank << ','
          << g.rowsPerSubarray << ',' << g.rowBytes << ','
          << g.defaultSalp;
    } else {
        d << "geom:default";
    }
    return d.str();
}

std::string
RunCache::key(const runtime::DeviceConfig &cfg,
              const std::string &workload, u64 elements, u64 seed,
              u32 repeat)
{
    std::ostringstream d;
    d << "pluto-sim-cache-v" << kCacheSchema << '|'
      << deviceDescriptor(cfg) << '|' << workload << '|' << elements
      << '|' << seed << '|' << repeat;
    return fnv1aHex(d.str());
}

void
RunCache::load()
{
    std::lock_guard<std::mutex> lock(mu_);
    entries_.clear();
    corrupt_ = 0;
    std::ifstream in(path_, std::ios::binary);
    if (!in)
        return; // no cache yet
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        std::string err;
        const auto v = JsonValue::parse(line, err);
        if (!v || !v->isObject()) {
            ++corrupt_;
            continue;
        }
        const JsonValue *key = v->find("key");
        const JsonValue *elements = v->find("elements");
        const JsonValue *timeNs = v->find("time_ns");
        const JsonValue *energyPj = v->find("energy_pj");
        const JsonValue *hostNs = v->find("host_ns");
        const JsonValue *verified = v->find("verified");
        const JsonValue *wallMs = v->find("wall_ms");
        if (!key || !key->isString() || !elements ||
            !elements->isNumber() || !timeNs || !timeNs->isNumber() ||
            !energyPj || !energyPj->isNumber() || !hostNs ||
            !hostNs->isNumber() || !verified || !verified->isBool() ||
            !wallMs || !wallMs->isNumber()) {
            ++corrupt_;
            continue;
        }
        CachedRun run;
        run.elements = static_cast<u64>(elements->asNumber());
        run.timeNs = timeNs->asNumber();
        run.energyPj = energyPj->asNumber();
        run.hostNs = hostNs->asNumber();
        run.verified = verified->asBool();
        run.wallMs = wallMs->asNumber();
        entries_[key->asString()] = run; // last line wins
    }
}

std::optional<CachedRun>
RunCache::lookup(const std::string &key) const
{
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = entries_.find(key);
    if (it == entries_.end())
        return std::nullopt;
    return it->second;
}

std::size_t
RunCache::entries() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.size();
}

std::string
RunCache::append(const std::string &key, const CachedRun &run)
{
    // Hand-formatted so doubles are written with full (%.17g)
    // precision regardless of the pretty-printer's style.
    std::string line = "{\"key\":\"" + key + "\"";
    line += ",\"elements\":" + std::to_string(run.elements);
    line += ",\"time_ns\":" + fmtExact(run.timeNs);
    line += ",\"energy_pj\":" + fmtExact(run.energyPj);
    line += ",\"host_ns\":" + fmtExact(run.hostNs);
    line += std::string(",\"verified\":") +
            (run.verified ? "true" : "false");
    line += ",\"wall_ms\":" + fmtExact(run.wallMs);
    line += "}\n";

    std::lock_guard<std::mutex> lock(mu_);
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
    if (ec)
        return "cannot create cache directory '" + dir_ +
               "': " + ec.message();
    std::ofstream out(path_, std::ios::binary | std::ios::app);
    if (!out)
        return "cannot open cache file '" + path_ + "' for append";
    out.write(line.data(), static_cast<std::streamsize>(line.size()));
    out.flush();
    if (!out)
        return "append to '" + path_ + "' failed";
    entries_[key] = run;
    return {};
}

} // namespace pluto::sim
