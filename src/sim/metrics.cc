/**
 * @file
 * CSV/JSON rendering of scenario results (see metrics.hh).
 */

#include "sim/metrics.hh"

#include <map>
#include <tuple>

#include "common/emit.hh"
#include "common/stats.hh"

namespace pluto::sim
{

namespace
{

/** Speedup of a simulated rate vs a host baseline rate. */
double
speedup(double baseline_ns_per_elem, double ns_per_elem)
{
    return ns_per_elem > 0.0 ? baseline_ns_per_elem / ns_per_elem
                             : 0.0;
}

} // namespace

std::vector<std::string>
MetricsSink::csvColumns()
{
    return {"scenario",     "variant",      "workload",
            "repeat",       "seed",         "elements",
            "time_ns",      "ns_per_elem",  "energy_pj",
            "pj_per_elem",  "host_ns",      "verified",
            "speedup_cpu",  "speedup_gpu",  "speedup_fpga",
            "speedup_pnm",  "wall_ms"};
}

std::string
MetricsSink::renderCsv(const SimConfig &cfg,
                       const ScenarioReport &report)
{
    CsvWriter csv(csvColumns());
    for (const auto &r : report.runs) {
        const double npe = r.result.nsPerElem();
        csv.addRow({
            cfg.name,
            r.variant,
            r.workload,
            fmtU64(r.repeat),
            fmtU64(r.seed),
            fmtU64(r.result.elements),
            fmtNum("%.6f", r.result.timeNs),
            fmtNum("%.9f", npe),
            fmtNum("%.6f", r.result.energyPj),
            fmtNum("%.9f", r.result.pjPerElem()),
            fmtNum("%.6f", r.result.hostNs),
            r.result.verified ? "yes" : "no",
            fmtNum("%.4f", speedup(r.rates.cpu, npe)),
            fmtNum("%.4f", speedup(r.rates.gpu, npe)),
            fmtNum("%.4f", speedup(r.rates.fpga, npe)),
            fmtNum("%.4f", speedup(r.rates.pnm, npe)),
            fmtNum("%.3f", r.wallMs),
        });
    }
    return csv.render();
}

std::vector<CellSummary>
MetricsSink::aggregate(const ScenarioReport &report)
{
    using CellKey = std::tuple<std::string, std::string, u64, u64>;
    std::vector<CellKey> order;
    std::map<CellKey, CellSummary> cells;
    for (const auto &r : report.runs) {
        const auto key = CellKey(r.variant, r.workload,
                                 r.result.elements, r.seed);
        auto [it, inserted] = cells.try_emplace(key);
        CellSummary &c = it->second;
        if (inserted) {
            order.push_back(key);
            c.variant = r.variant;
            c.workload = r.workload;
            c.elements = r.result.elements;
            c.seed = r.seed;
            c.verified = true;
            c.rates = r.rates;
        }
        ++c.runs;
        c.verified = c.verified && r.result.verified;
        c.meanTimeNs += r.result.timeNs;
        c.meanEnergyPj += r.result.energyPj;
        c.wallMs += r.wallMs;
    }

    std::vector<CellSummary> out;
    out.reserve(order.size());
    for (const auto &key : order) {
        CellSummary c = cells.at(key);
        const double n = static_cast<double>(c.runs);
        c.meanTimeNs /= n;
        c.meanEnergyPj /= n;
        if (c.elements) {
            c.nsPerElem =
                c.meanTimeNs / static_cast<double>(c.elements);
            c.pjPerElem =
                c.meanEnergyPj / static_cast<double>(c.elements);
        }
        out.push_back(std::move(c));
    }
    return out;
}

std::string
MetricsSink::renderJson(const SimConfig &cfg,
                        const ScenarioReport &report)
{
    JsonValue root = JsonValue::object();
    root.set("scenario", cfg.name);
    root.set("total_runs",
             static_cast<unsigned long long>(report.runs.size()));
    root.set("all_verified", report.allVerified());
    root.set("wall_ms", report.wallMs);

    JsonValue &results = root.set("results", JsonValue::array());
    std::map<std::string, std::vector<double>> cpuSpeedups;
    for (const CellSummary &c : aggregate(report)) {
        JsonValue &row = results.push(JsonValue::object());
        row.set("variant", c.variant);
        row.set("workload", c.workload);
        row.set("runs", static_cast<unsigned long long>(c.runs));
        row.set("elements",
                static_cast<unsigned long long>(c.elements));
        row.set("seed", static_cast<unsigned long long>(c.seed));
        row.set("verified", c.verified);
        row.set("mean_time_ns", c.meanTimeNs);
        row.set("ns_per_elem", c.nsPerElem);
        row.set("mean_energy_pj", c.meanEnergyPj);
        row.set("pj_per_elem", c.pjPerElem);
        row.set("wall_ms", c.wallMs);
        JsonValue &sp = row.set("speedup", JsonValue::object());
        sp.set("cpu", speedup(c.rates.cpu, c.nsPerElem));
        sp.set("gpu", speedup(c.rates.gpu, c.nsPerElem));
        sp.set("fpga", speedup(c.rates.fpga, c.nsPerElem));
        sp.set("pnm", speedup(c.rates.pnm, c.nsPerElem));
        cpuSpeedups[c.variant].push_back(
            speedup(c.rates.cpu, c.nsPerElem));
    }

    JsonValue &variants = root.set("variants", JsonValue::array());
    for (const auto &d : cfg.devices) {
        JsonValue &row = variants.push(JsonValue::object());
        row.set("name", d.name);
        row.set("design", core::designName(d.config.design));
        row.set("memory", dram::memoryKindName(d.config.memory));
        row.set("salp",
                static_cast<unsigned long long>(d.config.salp));
        row.set("faw", d.config.fawScale);
        const auto it = cpuSpeedups.find(d.name);
        row.set("geomean_speedup_cpu",
                it != cpuSpeedups.end() ? geomean(it->second) : 0.0);
    }
    return root.dump();
}

std::string
MetricsSink::write(const SimConfig &cfg, const ScenarioReport &report,
                   std::vector<std::string> &written,
                   const std::string &suffix)
{
    const std::string base = cfg.outDir + "/" + cfg.name + suffix;
    const std::string csvPath = base + "_runs.csv";
    std::string err = writeTextFile(csvPath, renderCsv(cfg, report));
    if (!err.empty())
        return err;
    written.push_back(csvPath);
    const std::string jsonPath = base + "_summary.json";
    err = writeTextFile(jsonPath, renderJson(cfg, report));
    if (!err.empty())
        return err;
    written.push_back(jsonPath);
    return {};
}

} // namespace pluto::sim
