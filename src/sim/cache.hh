/**
 * @file
 * RunCache: the batch scenario engine's content-addressed run cache —
 * a campaign::JsonlCache with the sim codec.
 *
 * Every (device config, workload, elements, seed, repeat) run is
 * identified by a content key over a canonical descriptor string
 * (namespaced `sim/`, see campaign/cache.hh for the shared on-disk
 * discipline: append-only JSONL, torn-line tolerance, last-wins
 * load, version header). Simulated results are deterministic, so
 * replaying a cache hit is bit-identical to recomputation.
 */

#ifndef PLUTO_SIM_CACHE_HH
#define PLUTO_SIM_CACHE_HH

#include "campaign/cache.hh"
#include "runtime/device.hh"

namespace pluto::sim
{

/** One cached simulated outcome (mirrors WorkloadResult + wall). */
struct CachedRun
{
    u64 elements = 0;
    double timeNs = 0.0;
    double energyPj = 0.0;
    double hostNs = 0.0;
    bool verified = false;
    /** Host wall-clock of the run that computed the result. */
    double wallMs = 0.0;
};

/** Cache codec of batch-run outcomes (see campaign/cache.hh). */
struct RunCacheCodec
{
    static constexpr const char *kKind = "sim";
    static std::string encodeBody(const CachedRun &run);
    static bool decode(const JsonValue &obj, CachedRun &run);
    static void encodeBinary(const CachedRun &run,
                             campaign::BinWriter &w);
    static bool decodeBinary(campaign::BinReader &r, CachedRun &run);
};

/** Append-only JSONL result cache for one scenario's batch runs. */
class RunCache
    : public campaign::JsonlCache<CachedRun, RunCacheCodec>
{
  public:
    using JsonlCache::JsonlCache;

    /**
     * @return the content key of one run. Everything that can change
     * a simulated result participates: the full device
     * configuration, the workload name, the resolved element count,
     * the input seed and the repeat index, plus a schema version.
     */
    static std::string key(const runtime::DeviceConfig &cfg,
                           const std::string &workload, u64 elements,
                           u64 seed, u32 repeat);
};

} // namespace pluto::sim

#endif // PLUTO_SIM_CACHE_HH
