/**
 * @file
 * RunCache: content-addressed per-run result cache of the scenario
 * engine.
 *
 * Every (device config, workload, elements, seed, repeat) run is
 * identified by a 64-bit FNV-1a content hash over a canonical
 * descriptor string. Results live in an append-only JSONL file
 * (`<dir>/<scenario>.cache.jsonl`), one object per line, so several
 * shard processes of one campaign may append concurrently and an
 * interrupted campaign resumes from whatever lines made it to disk.
 * Loading is last-wins per key and silently skips corrupt (e.g.
 * torn) lines, counting them.
 *
 * Simulated results are deterministic, so replaying a cache hit is
 * bit-identical to recomputation; doubles are stored with %.17g and
 * therefore round-trip exactly.
 */

#ifndef PLUTO_SIM_CACHE_HH
#define PLUTO_SIM_CACHE_HH

#include <map>
#include <mutex>
#include <optional>
#include <string>

#include "runtime/device.hh"

namespace pluto::sim
{

/**
 * @return the 16-hex-digit FNV-1a hash of `descriptor` — the content
 * key format shared by the batch run cache and the service cache.
 */
std::string fnv1aHex(const std::string &descriptor);

/** @return `v` formatted so it round-trips exactly (%.17g). */
std::string fmtDoubleExact(double v);

/**
 * @return the canonical descriptor string of a device configuration:
 * every field that can change a simulated result, in a fixed order.
 * Shared by all content keys that depend on the device.
 */
std::string deviceDescriptor(const runtime::DeviceConfig &cfg);

/** One cached simulated outcome (mirrors WorkloadResult + wall). */
struct CachedRun
{
    u64 elements = 0;
    double timeNs = 0.0;
    double energyPj = 0.0;
    double hostNs = 0.0;
    bool verified = false;
    /** Host wall-clock of the run that computed the result. */
    double wallMs = 0.0;
};

/** Append-only JSONL result cache for one scenario. */
class RunCache
{
  public:
    /**
     * Cache for scenario `scenario` under directory `dir` (created
     * if missing on first append).
     */
    RunCache(std::string dir, const std::string &scenario);

    /**
     * @return the content hash ("run key", 16 hex digits) of one
     * run. Everything that can change a simulated result
     * participates: the full device configuration, the workload
     * name, the resolved element count, the input seed and the
     * repeat index, plus a schema version.
     */
    static std::string key(const runtime::DeviceConfig &cfg,
                           const std::string &workload, u64 elements,
                           u64 seed, u32 repeat);

    /** Load the cache file (missing file = empty cache). */
    void load();

    /**
     * Look up `key`. The returned copy (not a reference) keeps the
     * caller safe from concurrent append() map mutations.
     */
    std::optional<CachedRun> lookup(const std::string &key) const;

    /**
     * Append one result (thread-safe; one whole line per write so
     * concurrent shard appends do not interleave). @return empty
     * string or an error description.
     */
    std::string append(const std::string &key, const CachedRun &run);

    /** @return loaded entry count. */
    std::size_t entries() const;

    /** @return lines skipped as corrupt during load(). */
    u64 corruptLines() const { return corrupt_; }

    /** @return the backing JSONL path. */
    const std::string &path() const { return path_; }

  private:
    std::string dir_;
    std::string path_;
    /** Guards entries_ (lookup from worker threads vs append). */
    mutable std::mutex mu_;
    std::map<std::string, CachedRun> entries_;
    u64 corrupt_ = 0;
};

} // namespace pluto::sim

#endif // PLUTO_SIM_CACHE_HH
