/**
 * @file
 * Scenario execution across a worker pool (see runner.hh).
 */

#include "sim/runner.hh"

#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>

#include "common/logging.hh"

namespace pluto::sim
{

namespace
{

/** Static description of one run, expanded from the config. */
struct RunTask
{
    u32 device = 0;
    u32 workload = 0;
    u32 repeat = 0;
};

double
msSince(const std::chrono::steady_clock::time_point &t0)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

} // namespace

bool
ScenarioReport::allVerified() const
{
    for (const auto &r : runs)
        if (!r.result.verified)
            return false;
    return !runs.empty();
}

ScenarioRunner::ScenarioRunner(SimConfig cfg) : cfg_(std::move(cfg)) {}

ScenarioReport
ScenarioRunner::run(u32 threads, const Progress &progress) const
{
    // Expand the cross product up front so every run has a stable
    // index: report order never depends on scheduling.
    std::vector<RunTask> tasks;
    for (u32 d = 0; d < cfg_.devices.size(); ++d)
        for (u32 w = 0; w < cfg_.workloads.size(); ++w) {
            const u32 reps = cfg_.workloads[w].repeats * cfg_.repeats;
            for (u32 r = 0; r < reps; ++r)
                tasks.push_back({d, w, r});
        }

    ScenarioReport report;
    report.runs.resize(tasks.size());

    if (threads == 0)
        threads = std::max(1u, std::thread::hardware_concurrency());
    threads = std::min<u32>(threads,
                            std::max<std::size_t>(tasks.size(), 1));

    const auto campaign_t0 = std::chrono::steady_clock::now();
    std::atomic<std::size_t> next{0};
    std::atomic<u64> done{0};
    std::mutex progress_mu;

    const auto worker = [&]() {
        for (;;) {
            const std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= tasks.size())
                return;
            const RunTask &t = tasks[i];
            const DeviceSpec &ds = cfg_.devices[t.device];
            const WorkloadSpec &ws = cfg_.workloads[t.workload];

            const auto t0 = std::chrono::steady_clock::now();
            // Per-run device and workload: nothing is shared between
            // runs, so simulated results cannot depend on threading.
            const auto w = workloads::makeWorkload(ws.name);
            runtime::PlutoDevice dev(ds.config);
            const u64 elements =
                ws.elements ? ws.elements
                            : w->defaultElements(ds.config.memory);

            RunRecord &rec = report.runs[i];
            rec.variant = ds.name;
            rec.workload = ws.name;
            rec.repeat = t.repeat;
            rec.rates = w->rates();
            rec.result = w->run(dev, elements);
            rec.wallMs = msSince(t0);

            const u64 n = done.fetch_add(1) + 1;
            if (progress) {
                std::lock_guard<std::mutex> lock(progress_mu);
                progress(rec, n, tasks.size());
            }
        }
    };

    if (threads == 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(threads);
        for (u32 i = 0; i < threads; ++i)
            pool.emplace_back(worker);
        for (auto &th : pool)
            th.join();
    }

    report.wallMs = msSince(campaign_t0);
    return report;
}

} // namespace pluto::sim
