/**
 * @file
 * Batch scenario execution on the campaign core (see runner.hh).
 */

#include "sim/runner.hh"

#include <chrono>
#include <optional>

#include "common/logging.hh"
#include "obs/registry.hh"
#include "obs/trace.hh"
#include "sim/cache.hh"

namespace pluto::sim
{

namespace
{

/** Static description of one run, expanded from the config. */
struct RunTask
{
    u32 device = 0;
    u32 workload = 0;
    u32 repeat = 0;
};

} // namespace

bool
ScenarioReport::allVerified() const
{
    for (const auto &r : runs)
        if (!r.result.verified)
            return false;
    return !runs.empty();
}

ScenarioRunner::ScenarioRunner(SimConfig cfg) : cfg_(std::move(cfg)) {}

ScenarioReport
ScenarioRunner::run(u32 threads, const Progress &progress) const
{
    RunOptions opt;
    opt.threads = threads;
    return run(opt, progress);
}

ScenarioReport
ScenarioRunner::run(const RunOptions &opt,
                    const Progress &progress) const
{
    const std::string oerr = opt.validate();
    if (!oerr.empty())
        fatal("ScenarioRunner: %s", oerr.c_str());

    // Expand the cross product up front so every run has a stable
    // global index: report order never depends on scheduling, and
    // shards partition the index space deterministically.
    std::vector<RunTask> tasks;
    {
        u64 g = 0;
        for (u32 d = 0; d < cfg_.devices.size(); ++d)
            for (u32 w = 0; w < cfg_.workloads.size(); ++w) {
                const u32 reps =
                    cfg_.workloads[w].repeats * cfg_.repeats;
                for (u32 r = 0; r < reps; ++r, ++g)
                    if (opt.inShard(g))
                        tasks.push_back({d, w, r});
            }
    }

    std::optional<RunCache> cache;
    if (!opt.cacheDir.empty()) {
        cache.emplace(opt.cacheDir, cfg_.name, opt.cacheFormat);
        const std::string cerr = cache->load();
        if (!cerr.empty())
            fatal("run cache: %s", cerr.c_str());
    }

    ScenarioReport report;
    const campaign::Stats stats = campaign::runCampaign(
        tasks.size(), opt, report.runs,
        [&](std::size_t i, RunRecord &rec, ScratchArena &arena) {
            const RunTask &t = tasks[i];
            const DeviceSpec &ds = cfg_.devices[t.device];
            const WorkloadSpec &ws = cfg_.workloads[t.workload];

            const auto t0 = std::chrono::steady_clock::now();
            const auto w = workloads::makeWorkload(ws.name);
            const u64 elements =
                ws.elements ? ws.elements
                            : w->defaultElements(ds.config.memory);

            rec.variant = ds.name;
            rec.workload = ws.name;
            rec.repeat = t.repeat;
            rec.seed = ws.seed;
            rec.rates = w->rates();

            std::string key;
            std::optional<CachedRun> hit;
            if (cache) {
                key = RunCache::key(ds.config, ws.name, elements,
                                    ws.seed, t.repeat);
                hit = cache->lookup(key);
            }
            if (hit) {
                // Simulated results are deterministic: replaying the
                // cache is bit-identical to recomputation. The stored
                // wall-clock is replayed too, keeping warm reruns
                // byte-identical to the run that populated the cache.
                rec.result.elements = hit->elements;
                rec.result.timeNs = hit->timeNs;
                rec.result.energyPj = hit->energyPj;
                rec.result.hostNs = hit->hostNs;
                rec.result.verified = hit->verified;
                rec.wallMs = opt.deterministic ? 0.0 : hit->wallMs;
                rec.fromCache = true;
                return true;
            }
            // Per-run device and workload: nothing is shared between
            // runs except the worker's scratch arena, so simulated
            // results cannot depend on threading.
            runtime::DeviceConfig cfg = ds.config;
            cfg.arena = &arena;
            runtime::PlutoDevice dev(cfg);
            auto *tr = obs::tracer();
            if (tr)
                dev.scheduler().setTraceLimit(4096);
            rec.result = w->run(dev, elements, ws.seed);
            rec.wallMs =
                opt.deterministic ? 0.0 : campaign::msSince(t0);
            if (auto *sh = obs::shard()) {
                sh->inc("sim/runs");
                sh->add("sim/elements",
                        static_cast<double>(rec.result.elements));
                // Distribution, not just totals: per-run simulated
                // time folds exactly across workers and shards.
                sh->hist("sim/run_ns").add(rec.result.timeNs);
                sh->absorb("device", dev.stats().counters);
            }
            if (tr) {
                // One virtual-time track per fresh run: the command
                // stream as the modeled hardware would execute it.
                const u64 track = tr->newVirtualTrack(
                    ds.name + "/" + ws.name + " #" +
                    std::to_string(t.repeat));
                for (const auto &ev : dev.scheduler().trace())
                    tr->virtualSpan(track, ev.name, ev.start,
                                    ev.end - ev.start);
            }
            if (cache) {
                CachedRun c;
                c.elements = rec.result.elements;
                c.timeNs = rec.result.timeNs;
                c.energyPj = rec.result.energyPj;
                c.hostNs = rec.result.hostNs;
                c.verified = rec.result.verified;
                c.wallMs = rec.wallMs;
                const std::string err = cache->append(key, c);
                if (!err.empty())
                    warn("run cache: %s", err.c_str());
            }
            return false;
        },
        progress);

    report.wallMs = stats.wallMs;
    report.cacheHits = stats.cacheHits;
    report.cacheMisses = stats.cacheMisses;
    return report;
}

} // namespace pluto::sim
