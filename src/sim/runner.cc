/**
 * @file
 * Scenario execution across a worker pool (see runner.hh).
 */

#include "sim/runner.hh"

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>

#include "common/arena.hh"
#include "common/logging.hh"
#include "sim/cache.hh"

namespace pluto::sim
{

namespace
{

/** Static description of one run, expanded from the config. */
struct RunTask
{
    u32 device = 0;
    u32 workload = 0;
    u32 repeat = 0;
};

double
msSince(const std::chrono::steady_clock::time_point &t0)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

} // namespace

u32
detail::resolveThreads(std::size_t count, u32 threads)
{
    if (threads == 0)
        threads = std::max(1u, std::thread::hardware_concurrency());
    return std::min<u32>(threads, std::max<std::size_t>(count, 1));
}

void
detail::forEachTask(std::size_t count, u32 threads,
                    const std::function<void(std::size_t, u32)> &fn)
{
    threads = resolveThreads(count, threads);

    std::atomic<std::size_t> next{0};
    const auto worker = [&](u32 w) {
        for (;;) {
            const std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= count)
                return;
            fn(i, w);
        }
    };
    if (threads == 1) {
        worker(0);
        return;
    }
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (u32 i = 0; i < threads; ++i)
        pool.emplace_back(worker, i);
    for (auto &th : pool)
        th.join();
}

bool
ScenarioReport::allVerified() const
{
    for (const auto &r : runs)
        if (!r.result.verified)
            return false;
    return !runs.empty();
}

ScenarioRunner::ScenarioRunner(SimConfig cfg) : cfg_(std::move(cfg)) {}

std::string
RunOptions::validate() const
{
    if (shardCount == 0)
        return "shard count must be >= 1";
    if (shardIndex >= shardCount)
        return "shard index " + std::to_string(shardIndex) +
               " out of range (0.." + std::to_string(shardCount - 1) +
               ")";
    return {};
}

ScenarioReport
ScenarioRunner::run(u32 threads, const Progress &progress) const
{
    RunOptions opt;
    opt.threads = threads;
    return run(opt, progress);
}

ScenarioReport
ScenarioRunner::run(const RunOptions &opt,
                    const Progress &progress) const
{
    const std::string oerr = opt.validate();
    if (!oerr.empty())
        fatal("ScenarioRunner: %s", oerr.c_str());

    // Expand the cross product up front so every run has a stable
    // global index: report order never depends on scheduling, and
    // shards partition the index space deterministically.
    std::vector<RunTask> tasks;
    {
        u64 g = 0;
        for (u32 d = 0; d < cfg_.devices.size(); ++d)
            for (u32 w = 0; w < cfg_.workloads.size(); ++w) {
                const u32 reps =
                    cfg_.workloads[w].repeats * cfg_.repeats;
                for (u32 r = 0; r < reps; ++r, ++g)
                    if (g % opt.shardCount == opt.shardIndex)
                        tasks.push_back({d, w, r});
            }
    }

    std::optional<RunCache> cache;
    if (!opt.cacheDir.empty()) {
        cache.emplace(opt.cacheDir, cfg_.name);
        cache->load();
    }

    ScenarioReport report;
    report.runs.resize(tasks.size());

    const auto campaign_t0 = std::chrono::steady_clock::now();
    std::atomic<u64> done{0};
    std::atomic<u64> hits{0};
    std::mutex progress_mu;

    // One scratch arena per worker: every device a worker builds
    // reuses the same grown functional-path buffers, so steady-state
    // runs allocate nothing per query. Simulated results do not
    // depend on the arena, so determinism across thread counts is
    // unaffected.
    std::vector<ScratchArena> arenas(
        detail::resolveThreads(tasks.size(), opt.threads));

    detail::forEachTask(
        tasks.size(), opt.threads, [&](std::size_t i, u32 worker) {
            const RunTask &t = tasks[i];
            const DeviceSpec &ds = cfg_.devices[t.device];
            const WorkloadSpec &ws = cfg_.workloads[t.workload];

            const auto t0 = std::chrono::steady_clock::now();
            const auto w = workloads::makeWorkload(ws.name);
            const u64 elements =
                ws.elements ? ws.elements
                            : w->defaultElements(ds.config.memory);

            RunRecord &rec = report.runs[i];
            rec.variant = ds.name;
            rec.workload = ws.name;
            rec.repeat = t.repeat;
            rec.seed = ws.seed;
            rec.rates = w->rates();

            std::string key;
            std::optional<CachedRun> hit;
            if (cache) {
                key = RunCache::key(ds.config, ws.name, elements,
                                    ws.seed, t.repeat);
                hit = cache->lookup(key);
            }
            if (hit) {
                // Simulated results are deterministic: replaying the
                // cache is bit-identical to recomputation. The stored
                // wall-clock is replayed too, keeping warm reruns
                // byte-identical to the run that populated the cache.
                rec.result.elements = hit->elements;
                rec.result.timeNs = hit->timeNs;
                rec.result.energyPj = hit->energyPj;
                rec.result.hostNs = hit->hostNs;
                rec.result.verified = hit->verified;
                rec.wallMs = hit->wallMs;
                rec.fromCache = true;
                hits.fetch_add(1, std::memory_order_relaxed);
            } else {
                // Per-run device and workload: nothing is shared
                // between runs except the worker's scratch arena, so
                // simulated results cannot depend on threading.
                runtime::DeviceConfig cfg = ds.config;
                cfg.arena = &arenas[worker];
                runtime::PlutoDevice dev(cfg);
                rec.result = w->run(dev, elements, ws.seed);
                rec.wallMs =
                    opt.deterministic ? 0.0 : msSince(t0);
                if (cache) {
                    CachedRun c;
                    c.elements = rec.result.elements;
                    c.timeNs = rec.result.timeNs;
                    c.energyPj = rec.result.energyPj;
                    c.hostNs = rec.result.hostNs;
                    c.verified = rec.result.verified;
                    c.wallMs = rec.wallMs;
                    const std::string err = cache->append(key, c);
                    if (!err.empty())
                        warn("run cache: %s", err.c_str());
                }
            }
            if (opt.deterministic)
                rec.wallMs = 0.0;

            const u64 n = done.fetch_add(1) + 1;
            if (progress) {
                std::lock_guard<std::mutex> lock(progress_mu);
                progress(rec, n, tasks.size());
            }
        });

    report.cacheHits = hits.load();
    report.cacheMisses = tasks.size() - report.cacheHits;
    report.wallMs = opt.deterministic ? 0.0 : msSince(campaign_t0);
    return report;
}

} // namespace pluto::sim
