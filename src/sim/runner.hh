/**
 * @file
 * ScenarioRunner: the batch campaign mode — a thin client of the
 * generic campaign core (campaign/runner.hh).
 *
 * Each run is fully independent: it owns a freshly constructed
 * PlutoDevice (and therefore its own Module, CommandScheduler and
 * Controller) and a freshly constructed workload, and all stochastic
 * input generation is seeded per workload — so runs are embarrassingly
 * parallel, wall-clock drops near-linearly with cores, and the
 * *simulated* timing/energy of every run is bit-identical regardless
 * of thread count or completion order. The campaign core supplies the
 * thread-pool fan-out, per-worker scratch arenas, precomputed-index
 * result ordering, `i % n` sharding, cache-hit accounting and
 * `--deterministic` wall-clock zeroing; this mode supplies the task
 * grid (variants x workloads x repeats), the RunCache codec and the
 * per-run cell.
 */

#ifndef PLUTO_SIM_RUNNER_HH
#define PLUTO_SIM_RUNNER_HH

#include <functional>
#include <string>
#include <vector>

#include "campaign/runner.hh"
#include "sim/config.hh"
#include "workloads/workload.hh"

namespace pluto::sim
{

/** Execution options of one campaign (shared by every mode). */
using RunOptions = campaign::RunOptions;

/** Result of one (variant, workload, repeat) run. */
struct RunRecord
{
    /** Variant label from the scenario file. */
    std::string variant;
    /** Workload registry name. */
    std::string workload;
    /** Repeat index within (variant, workload), 0-based. */
    u32 repeat = 0;
    /** Input-generation seed of the workload entry. */
    u64 seed = 0;
    /** Simulated outcome. */
    workloads::WorkloadResult result;
    /** Host baseline rates of the workload (for speedup columns). */
    workloads::BaselineRates rates;
    /** Host wall-clock spent simulating this run, milliseconds. */
    double wallMs = 0.0;
    /** Result was replayed from the run cache. */
    bool fromCache = false;
};

/** Aggregated outcome of a whole scenario (or one shard of it). */
struct ScenarioReport
{
    /** All runs, variant-major then workload then repeat. */
    std::vector<RunRecord> runs;
    /** Host wall-clock of the whole campaign, milliseconds. */
    double wallMs = 0.0;
    /** Runs replayed from the cache / computed fresh. */
    u64 cacheHits = 0;
    u64 cacheMisses = 0;
    /** @return true when every run passed functional verification. */
    bool allVerified() const;
};

/** Batch executor for one scenario. */
class ScenarioRunner
{
  public:
    /** Called after each finished run (serialized; for progress). */
    using Progress = std::function<void(const RunRecord &, u64 done,
                                        u64 total)>;

    explicit ScenarioRunner(SimConfig cfg);

    /** @return the scenario being run. */
    const SimConfig &config() const { return cfg_; }

    /**
     * Execute every run on `threads` worker threads (0 = hardware
     * concurrency). @return the aggregated report.
     */
    ScenarioReport run(u32 threads = 0,
                       const Progress &progress = nullptr) const;

    /**
     * Execute this process's shard of the scenario under `opt`
     * (which must validate()). @return the aggregated report of the
     * executed shard.
     */
    ScenarioReport run(const RunOptions &opt,
                       const Progress &progress = nullptr) const;

  private:
    SimConfig cfg_;
};

} // namespace pluto::sim

#endif // PLUTO_SIM_RUNNER_HH
