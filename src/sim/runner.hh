/**
 * @file
 * ScenarioRunner: executes every run of a SimConfig across a thread
 * pool and aggregates results.
 *
 * Each run is fully independent: it owns a freshly constructed
 * PlutoDevice (and therefore its own Module, CommandScheduler and
 * Controller) and a freshly constructed workload, and all stochastic
 * input generation is seeded per workload — so runs are embarrassingly
 * parallel, wall-clock drops near-linearly with cores, and the
 * *simulated* timing/energy of every run is bit-identical regardless
 * of thread count or completion order. Results are stored by
 * precomputed run index, keeping report order deterministic too.
 *
 * v2 adds campaign-scale execution:
 *  - sharding: `--shard i/n` executes only tasks whose global run
 *    index is congruent to i mod n, so a big grid spreads over
 *    processes or machines;
 *  - caching: with a cache directory set, finished runs append to a
 *    content-hashed JSONL cache (see cache.hh) and repeated or
 *    resumed campaigns replay hits bit-identically instead of
 *    recomputing. Running the shards first and then one unsharded
 *    pass over the same cache yields a merged report whose simulated
 *    results equal a cold unsharded run's bit for bit;
 *  - deterministic mode: zeroes host wall-clock fields (the only
 *    nondeterministic outputs), making emitted CSV/JSON byte-
 *    identical across runs — e.g. sharded+merged vs cold unsharded.
 */

#ifndef PLUTO_SIM_RUNNER_HH
#define PLUTO_SIM_RUNNER_HH

#include <functional>
#include <string>
#include <vector>

#include "sim/config.hh"
#include "workloads/workload.hh"

namespace pluto::sim
{

/** Result of one (variant, workload, repeat) run. */
struct RunRecord
{
    /** Variant label from the scenario file. */
    std::string variant;
    /** Workload registry name. */
    std::string workload;
    /** Repeat index within (variant, workload), 0-based. */
    u32 repeat = 0;
    /** Input-generation seed of the workload entry. */
    u64 seed = 0;
    /** Simulated outcome. */
    workloads::WorkloadResult result;
    /** Host baseline rates of the workload (for speedup columns). */
    workloads::BaselineRates rates;
    /** Host wall-clock spent simulating this run, milliseconds. */
    double wallMs = 0.0;
    /** Result was replayed from the run cache. */
    bool fromCache = false;
};

/** Aggregated outcome of a whole scenario (or one shard of it). */
struct ScenarioReport
{
    /** All runs, variant-major then workload then repeat. */
    std::vector<RunRecord> runs;
    /** Host wall-clock of the whole campaign, milliseconds. */
    double wallMs = 0.0;
    /** Runs replayed from the cache / computed fresh. */
    u64 cacheHits = 0;
    u64 cacheMisses = 0;
    /** @return true when every run passed functional verification. */
    bool allVerified() const;
};

/** Execution options of one ScenarioRunner::run invocation. */
struct RunOptions
{
    /** Worker threads; 0 = hardware concurrency. */
    u32 threads = 0;
    /** This process executes run indices i with i % shardCount ==
     *  shardIndex. */
    u32 shardIndex = 0;
    u32 shardCount = 1;
    /** Result-cache directory; empty disables caching. */
    std::string cacheDir;
    /** Zero all host wall-clock fields in the report. */
    bool deterministic = false;

    /** @return empty string, or why the options are invalid. */
    std::string validate() const;
};

namespace detail
{

/** Effective worker count forEachTask will use for `count` tasks. */
u32 resolveThreads(std::size_t count, u32 threads);

/**
 * Shared campaign scaffolding: execute `count` indexed tasks across
 * `threads` worker threads (0 = hardware concurrency, clamped to the
 * task count) pulling indices from one atomic queue. Both the batch
 * ScenarioRunner and serve::ServiceRunner run on this, so the
 * execution discipline cannot diverge between modes. `fn` receives
 * the task index and the worker index in [0, resolveThreads(...)),
 * so workers can own per-thread state (e.g. a ScratchArena).
 */
void forEachTask(std::size_t count, u32 threads,
                 const std::function<void(std::size_t, u32)> &fn);

} // namespace detail

/** Batch executor for one scenario. */
class ScenarioRunner
{
  public:
    /** Called after each finished run (serialized; for progress). */
    using Progress = std::function<void(const RunRecord &, u64 done,
                                        u64 total)>;

    explicit ScenarioRunner(SimConfig cfg);

    /** @return the scenario being run. */
    const SimConfig &config() const { return cfg_; }

    /**
     * Execute every run on `threads` worker threads (0 = hardware
     * concurrency). @return the aggregated report.
     */
    ScenarioReport run(u32 threads = 0,
                       const Progress &progress = nullptr) const;

    /**
     * Execute this process's shard of the scenario under `opt`
     * (which must validate()). @return the aggregated report of the
     * executed shard.
     */
    ScenarioReport run(const RunOptions &opt,
                       const Progress &progress = nullptr) const;

  private:
    SimConfig cfg_;
};

} // namespace pluto::sim

#endif // PLUTO_SIM_RUNNER_HH
