/**
 * @file
 * Scenario-file parser (see config.hh).
 */

#include "sim/config.hh"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "workloads/workload.hh"

namespace pluto::sim
{

namespace
{

/** Strip comments and surrounding whitespace. */
std::string
cleanLine(const std::string &raw)
{
    std::string s = raw;
    const auto hash = s.find_first_of("#;");
    if (hash != std::string::npos)
        s.erase(hash);
    const auto b = s.find_first_not_of(" \t\r");
    if (b == std::string::npos)
        return {};
    const auto e = s.find_last_not_of(" \t\r");
    return s.substr(b, e - b + 1);
}

bool
parseU64(const std::string &s, u64 &out)
{
    // Digits only: strtoull would silently wrap "-1" to ULLONG_MAX.
    if (s.empty() ||
        s.find_first_not_of("0123456789") != std::string::npos)
        return false;
    errno = 0;
    char *end = nullptr;
    const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
    if (end != s.c_str() + s.size() || errno == ERANGE)
        return false;
    out = v;
    return true;
}

bool
parseU32(const std::string &s, u32 &out)
{
    u64 v = 0;
    if (!parseU64(s, v) || v > 0xffffffffull)
        return false;
    out = static_cast<u32>(v);
    return true;
}

bool
parseDouble(const std::string &s, double &out)
{
    if (s.empty())
        return false;
    char *end = nullptr;
    const double v = std::strtod(s.c_str(), &end);
    // Non-finite values (strtod accepts "inf"/"nan") are never valid
    // config inputs: an infinite rate or weight hangs the serving
    // simulation instead of failing with a diagnostic.
    if (end != s.c_str() + s.size() || !std::isfinite(v))
        return false;
    out = v;
    return true;
}

bool
parseBool(const std::string &s, bool &out)
{
    if (s == "on" || s == "true" || s == "1") {
        out = true;
        return true;
    }
    if (s == "off" || s == "false" || s == "0") {
        out = false;
        return true;
    }
    return false;
}

/** Apply one [device]/[variant] key. @return error text or empty. */
std::string
applyDeviceKey(runtime::DeviceConfig &cfg, const std::string &key,
               const std::string &value)
{
    if (key == "memory") {
        if (value == "ddr4")
            cfg.memory = dram::MemoryKind::Ddr4;
        else if (value == "3ds" || value == "hmc3ds")
            cfg.memory = dram::MemoryKind::Hmc3ds;
        else
            return "bad memory '" + value + "' (ddr4 | 3ds)";
    } else if (key == "design") {
        if (value == "bsa")
            cfg.design = core::Design::Bsa;
        else if (value == "gsa")
            cfg.design = core::Design::Gsa;
        else if (value == "gmc")
            cfg.design = core::Design::Gmc;
        else
            return "bad design '" + value + "' (bsa | gsa | gmc)";
    } else if (key == "salp") {
        if (!parseU32(value, cfg.salp))
            return "bad salp '" + value + "' (unsigned integer)";
    } else if (key == "faw") {
        // The negated form also rejects NaN, which strtod accepts.
        if (!parseDouble(value, cfg.fawScale) ||
            !(cfg.fawScale >= 0.0 && cfg.fawScale <= 1.0))
            return "bad faw '" + value + "' (0..1)";
    } else if (key == "refresh") {
        if (!parseBool(value, cfg.modelRefresh))
            return "bad refresh '" + value + "' (on | off)";
    } else if (key == "load_method") {
        if (value == "generate")
            cfg.loadMethod = core::LutLoadMethod::FirstTimeGeneration;
        else if (value == "memory")
            cfg.loadMethod = core::LutLoadMethod::FromMemory;
        else if (value == "storage")
            cfg.loadMethod = core::LutLoadMethod::FromStorage;
        else
            return "bad load_method '" + value +
                   "' (generate | memory | storage)";
    } else {
        return "unknown device key '" + key + "'";
    }
    return {};
}

/** Apply one [service] key. @return error text or empty. */
std::string
applyServiceKey(ServiceSpec &svc, const std::string &key,
                const std::string &value)
{
    if (key == "mode") {
        if (value == "open")
            svc.closedLoop = false;
        else if (value == "closed")
            svc.closedLoop = true;
        else
            return "bad mode '" + value + "' (open | closed)";
    } else if (key == "arrivals") {
        if (value == "poisson")
            svc.uniformArrivals = false;
        else if (value == "uniform")
            svc.uniformArrivals = true;
        else
            return "bad arrivals '" + value +
                   "' (poisson | uniform)";
    } else if (key == "rate") {
        if (!parseDouble(value, svc.ratePerSec) ||
            !(svc.ratePerSec > 0.0))
            return "bad rate '" + value + "' (requests/s > 0)";
    } else if (key == "duration_ms") {
        if (!parseDouble(value, svc.durationMs) ||
            !(svc.durationMs > 0.0))
            return "bad duration_ms '" + value + "' (ms > 0)";
    } else if (key == "clients") {
        if (!parseU32(value, svc.clients) || svc.clients == 0)
            return "bad clients '" + value + "' (integer >= 1)";
    } else if (key == "think_ms") {
        if (!parseDouble(value, svc.thinkMs) || !(svc.thinkMs >= 0.0))
            return "bad think_ms '" + value + "' (ms >= 0)";
    } else if (key == "policy") {
        if (value == "immediate")
            svc.policy = BatchPolicyKind::Immediate;
        else if (value == "fixed")
            svc.policy = BatchPolicyKind::FixedSize;
        else if (value == "window")
            svc.policy = BatchPolicyKind::TimeWindow;
        else if (value == "adaptive")
            svc.policy = BatchPolicyKind::Adaptive;
        else
            return "bad policy '" + value +
                   "' (immediate | fixed | window | adaptive)";
    } else if (key == "batch") {
        if (!parseU32(value, svc.batch) || svc.batch == 0)
            return "bad batch '" + value + "' (integer >= 1)";
    } else if (key == "window_ms") {
        if (!parseDouble(value, svc.windowMs) ||
            !(svc.windowMs >= 0.0))
            return "bad window_ms '" + value + "' (ms >= 0)";
    } else if (key == "devices") {
        if (!parseU32(value, svc.devices) || svc.devices == 0)
            return "bad devices '" + value + "' (integer >= 1)";
    } else if (key == "lanes") {
        if (!parseU32(value, svc.lanes) || svc.lanes == 0)
            return "bad lanes '" + value + "' (integer >= 1)";
    } else if (key == "seed") {
        if (!parseU64(value, svc.seed))
            return "bad seed '" + value + "' (unsigned integer)";
    } else if (key == "slo_ms") {
        if (!parseDouble(value, svc.sloMs) || !(svc.sloMs >= 0.0))
            return "bad slo_ms '" + value + "' (ms >= 0; 0 = off)";
    } else if (key == "slo_target") {
        if (!parseDouble(value, svc.sloTarget) ||
            !(svc.sloTarget > 0.0 && svc.sloTarget < 1.0))
            return "bad slo_target '" + value + "' (0 < q < 1)";
    } else if (key == "tail_quantile") {
        if (!parseDouble(value, svc.tailQuantile) ||
            !(svc.tailQuantile > 0.0 && svc.tailQuantile < 1.0))
            return "bad tail_quantile '" + value + "' (0 < q < 1)";
    } else if (key == "tenant_skew") {
        if (!parseDouble(value, svc.tenantSkew) ||
            !(svc.tenantSkew >= 0.0))
            return "bad tenant_skew '" + value +
                   "' (Zipf exponent >= 0; 0 = uniform)";
    } else if (key == "timeseries_ms") {
        if (!parseDouble(value, svc.timeseriesMs) ||
            !(svc.timeseriesMs > 0.0))
            return "bad timeseries_ms '" + value + "' (ms > 0)";
    } else if (key == "memo") {
        if (value == "on")
            svc.memo = MemoMode::On;
        else if (value == "off")
            svc.memo = MemoMode::Off;
        else if (value == "verify")
            svc.memo = MemoMode::Verify;
        else
            return "bad memo '" + value + "' (on | off | verify)";
    } else {
        return "unknown service key '" + key + "'";
    }
    return {};
}

/** Apply one [nn] key. @return error text or empty. */
std::string
applyNnKey(NnSpec &nn, const std::string &key,
           const std::string &value)
{
    if (key == "bits") {
        if (!parseU32(value, nn.bits) ||
            (nn.bits != 1 && nn.bits != 4))
            return "bad bits '" + value + "' (1 | 4)";
    } else if (key == "images") {
        if (!parseU32(value, nn.images) || nn.images == 0)
            return "bad images '" + value + "' (integer >= 1)";
    } else if (key == "seed") {
        if (!parseU64(value, nn.seed))
            return "bad seed '" + value + "' (unsigned integer)";
    } else {
        return "unknown nn key '" + key + "'";
    }
    return {};
}

/** One `sweep KEY = v1, v2, ...` line, kept until expansion. */
struct Sweep
{
    std::string key;
    std::vector<std::string> values;
    int lineno = 0;
};

/** A [variant] (or the implicit default) before grid expansion. */
struct VariantDraft
{
    std::string name;
    runtime::DeviceConfig config;
    /** Keys plainly assigned in this section (override inherited
     *  device-level sweeps). */
    std::vector<std::string> assigned;
    std::vector<Sweep> sweeps;
    int lineno = 0;
};

/** A [workload] section before grid expansion. */
struct WorkloadDraft
{
    WorkloadSpec spec;
    /** Keys plainly assigned in this section. */
    std::vector<std::string> assigned;
    std::vector<Sweep> sweeps;
    int lineno = 0;
};

/** A [service] section before grid expansion. */
struct ServiceDraft
{
    ServiceSpec spec;
    std::vector<std::string> assigned;
    std::vector<Sweep> sweeps;
    int lineno = 0;
};

/** An [nn] section before grid expansion. */
struct NnDraft
{
    NnSpec spec;
    std::vector<std::string> assigned;
    std::vector<Sweep> sweeps;
    int lineno = 0;
};


bool
contains(const std::vector<std::string> &v, const std::string &s)
{
    for (const auto &x : v)
        if (x == s)
            return true;
    return false;
}

bool
sweepsKey(const std::vector<Sweep> &sweeps, const std::string &key)
{
    for (const auto &s : sweeps)
        if (s.key == key)
            return true;
    return false;
}

/**
 * Split a comma-separated sweep value list. @return error text or
 * empty; values are trimmed and non-empty on success.
 */
std::string
splitSweepValues(const std::string &text,
                 std::vector<std::string> &out)
{
    std::size_t start = 0;
    while (true) {
        const auto comma = text.find(',', start);
        const std::string raw =
            text.substr(start, comma == std::string::npos
                                   ? std::string::npos
                                   : comma - start);
        const auto b = raw.find_first_not_of(" \t");
        if (b == std::string::npos)
            return "empty value in sweep list";
        const auto e = raw.find_last_not_of(" \t");
        out.push_back(raw.substr(b, e - b + 1));
        if (comma == std::string::npos)
            return {};
        start = comma + 1;
    }
}

/** Apply one swept workload key. @return error text or empty. */
std::string
applyWorkloadSweepKey(WorkloadSpec &w, const std::string &key,
                      const std::string &value)
{
    if (key == "elements") {
        if (!parseU64(value, w.elements) || w.elements == 0)
            return "bad elements '" + value + "' (integer >= 1)";
    } else if (key == "seed") {
        if (!parseU64(value, w.seed))
            return "bad seed '" + value + "' (unsigned integer)";
    } else {
        return "cannot sweep workload key '" + key +
               "' (elements | seed)";
    }
    return {};
}

/** Total combination count of a sweep list (0 on overflow). */
u64
gridSize(const std::vector<Sweep> &sweeps)
{
    u64 n = 1;
    for (const auto &s : sweeps) {
        if (s.values.size() > 4096 / n)
            return 0;
        n *= s.values.size();
    }
    return n;
}

} // namespace

const char *
batchPolicyName(BatchPolicyKind kind)
{
    switch (kind) {
      case BatchPolicyKind::Immediate:
        return "immediate";
      case BatchPolicyKind::FixedSize:
        return "fixed";
      case BatchPolicyKind::TimeWindow:
        return "window";
      case BatchPolicyKind::Adaptive:
        return "adaptive";
    }
    return "?";
}

const char *
memoModeName(MemoMode mode)
{
    switch (mode) {
      case MemoMode::On:
        return "on";
      case MemoMode::Off:
        return "off";
      case MemoMode::Verify:
        return "verify";
    }
    return "?";
}

u64
SimConfig::totalRuns() const
{
    u64 per_variant = 0;
    for (const auto &w : workloads)
        per_variant += static_cast<u64>(w.repeats) * repeats;
    return per_variant * devices.size();
}

u64
SimConfig::totalServiceRuns() const
{
    return static_cast<u64>(devices.size()) * services.size();
}

u64
SimConfig::totalNnRuns() const
{
    return static_cast<u64>(devices.size()) * nnCells.size();
}

std::optional<SimConfig>
SimConfig::parse(const std::string &text, std::string &error)
{
    enum class Section
    {
        None,
        Scenario,
        Device,
        Variant,
        Workload,
        Service,
        Nn,
    };

    SimConfig cfg;
    runtime::DeviceConfig defaults;
    std::vector<std::string> defaultsAssigned;
    std::vector<Sweep> deviceSweeps;
    std::vector<VariantDraft> variants;
    std::vector<WorkloadDraft> workloads;
    std::vector<ServiceDraft> services;
    std::vector<NnDraft> nnCells;
    Section section = Section::None;
    int lineno = 0;

    const auto fail = [&](const std::string &msg) {
        error = "line " + std::to_string(lineno) + ": " + msg;
        return std::nullopt;
    };

    std::istringstream in(text);
    std::string raw;
    while (std::getline(in, raw)) {
        ++lineno;
        const std::string line = cleanLine(raw);
        if (line.empty())
            continue;

        if (line.front() == '[') {
            if (line.back() != ']')
                return fail("unterminated section header");
            const std::string inner = line.substr(1, line.size() - 2);
            const auto sp = inner.find_first_of(" \t");
            const std::string head =
                sp == std::string::npos ? inner : inner.substr(0, sp);
            std::string arg;
            if (sp != std::string::npos) {
                const auto b = inner.find_first_not_of(" \t", sp);
                if (b != std::string::npos)
                    arg = inner.substr(b);
            }
            if (head == "scenario") {
                if (!arg.empty())
                    return fail("[scenario] takes no argument");
                section = Section::Scenario;
            } else if (head == "device") {
                if (!arg.empty())
                    return fail("[device] takes no argument");
                if (!variants.empty())
                    return fail(
                        "[device] must precede [variant] sections");
                section = Section::Device;
            } else if (head == "variant") {
                if (arg.empty())
                    return fail("[variant] needs a name");
                for (const auto &v : variants)
                    if (v.name == arg)
                        return fail("duplicate variant '" + arg + "'");
                VariantDraft v;
                v.name = arg;
                v.config = defaults;
                v.lineno = lineno;
                variants.push_back(std::move(v));
                section = Section::Variant;
            } else if (head == "workload") {
                if (arg.empty())
                    return fail("[workload] needs a name");
                if (!workloads::createWorkload(arg))
                    return fail("unknown workload '" + arg +
                                "' (available: " +
                                workloads::workloadNamesJoined() +
                                ")");
                WorkloadDraft w;
                w.spec.name = arg;
                w.lineno = lineno;
                workloads.push_back(std::move(w));
                section = Section::Workload;
            } else if (head == "service") {
                ServiceDraft s;
                s.spec.name = arg.empty() ? "service" : arg;
                for (const auto &other : services)
                    if (other.spec.name == s.spec.name)
                        return fail("duplicate service '" +
                                    s.spec.name + "'");
                s.lineno = lineno;
                services.push_back(std::move(s));
                section = Section::Service;
            } else if (head == "nn") {
                NnDraft n;
                n.spec.name = arg.empty() ? "nn" : arg;
                for (const auto &other : nnCells)
                    if (other.spec.name == n.spec.name)
                        return fail("duplicate nn cell '" +
                                    n.spec.name + "'");
                n.lineno = lineno;
                nnCells.push_back(std::move(n));
                section = Section::Nn;
            } else {
                return fail("unknown section [" + head + "]");
            }
            continue;
        }

        const auto eq = line.find('=');
        if (eq == std::string::npos)
            return fail("expected 'key = value'");
        std::string key = cleanLine(line.substr(0, eq));
        const std::string value = cleanLine(line.substr(eq + 1));
        if (key.empty())
            return fail("empty key");
        if (value.empty())
            return fail("empty value for '" + key + "'");

        // Grid lines: `sweep KEY = v1, v2, ...`.
        bool isSweep = false;
        if (key == "sweep")
            return fail("sweep needs a key (sweep KEY = v1, v2, ...)");
        if (key.rfind("sweep", 0) == 0 &&
            (key[5] == ' ' || key[5] == '\t')) {
            isSweep = true;
            key = cleanLine(key.substr(6));
            if (key.empty())
                return fail(
                    "sweep needs a key (sweep KEY = v1, v2, ...)");
        }
        Sweep sweep;
        if (isSweep) {
            sweep.key = key;
            sweep.lineno = lineno;
            const std::string err =
                splitSweepValues(value, sweep.values);
            if (!err.empty())
                return fail(err);
        }

        switch (section) {
          case Section::None:
            return fail("'" + key + "' outside any section");
          case Section::Scenario:
            if (isSweep)
                return fail("sweep is not allowed in [scenario]");
            if (key == "name") {
                cfg.name = value;
            } else if (key == "out_dir") {
                cfg.outDir = value;
            } else if (key == "repeats") {
                if (!parseU32(value, cfg.repeats) || cfg.repeats == 0)
                    return fail("bad repeats '" + value +
                                "' (integer >= 1)");
            } else {
                return fail("unknown scenario key '" + key + "'");
            }
            break;
          case Section::Device:
          case Section::Variant: {
            runtime::DeviceConfig &target =
                section == Section::Device ? defaults
                                           : variants.back().config;
            std::vector<std::string> &assigned =
                section == Section::Device
                    ? defaultsAssigned
                    : variants.back().assigned;
            std::vector<Sweep> &sweeps =
                section == Section::Device ? deviceSweeps
                                           : variants.back().sweeps;
            if (isSweep) {
                if (sweepsKey(sweeps, key))
                    return fail("duplicate sweep key '" + key + "'");
                if (contains(assigned, key))
                    return fail("'" + key +
                                "' is both set and swept in this "
                                "section");
                // Validate every grid value against a scratch config
                // so bad grid cells fail here, with this line number.
                for (const auto &v : sweep.values) {
                    runtime::DeviceConfig scratch = target;
                    const std::string err =
                        applyDeviceKey(scratch, key, v);
                    if (!err.empty())
                        return fail(err);
                }
                sweeps.push_back(std::move(sweep));
            } else {
                if (sweepsKey(sweeps, key))
                    return fail("'" + key +
                                "' is both set and swept in this "
                                "section");
                const std::string err =
                    applyDeviceKey(target, key, value);
                if (!err.empty())
                    return fail(err);
                if (!contains(assigned, key))
                    assigned.push_back(key);
            }
            break;
          }
          case Section::Workload: {
            WorkloadDraft &w = workloads.back();
            if (isSweep) {
                if (sweepsKey(w.sweeps, key))
                    return fail("duplicate sweep key '" + key + "'");
                if (contains(w.assigned, key))
                    return fail("'" + key +
                                "' is both set and swept in this "
                                "section");
                for (const auto &v : sweep.values) {
                    WorkloadSpec scratch = w.spec;
                    const std::string err =
                        applyWorkloadSweepKey(scratch, key, v);
                    if (!err.empty())
                        return fail(err);
                }
                w.sweeps.push_back(std::move(sweep));
            } else if (key == "elements") {
                if (sweepsKey(w.sweeps, key))
                    return fail("'elements' is both set and swept in "
                                "this section");
                if (!parseU64(value, w.spec.elements) ||
                    w.spec.elements == 0)
                    return fail("bad elements '" + value +
                                "' (integer >= 1)");
                w.assigned.push_back(key);
            } else if (key == "seed") {
                if (sweepsKey(w.sweeps, key))
                    return fail("'seed' is both set and swept in "
                                "this section");
                if (!parseU64(value, w.spec.seed))
                    return fail("bad seed '" + value +
                                "' (unsigned integer)");
                w.assigned.push_back(key);
            } else if (key == "repeats") {
                if (!parseU32(value, w.spec.repeats) ||
                    w.spec.repeats == 0)
                    return fail("bad repeats '" + value +
                                "' (integer >= 1)");
            } else if (key == "tenant") {
                if (!parseU32(value, w.spec.tenant))
                    return fail("bad tenant '" + value +
                                "' (unsigned integer)");
            } else if (key == "weight") {
                if (!parseDouble(value, w.spec.weight) ||
                    !(w.spec.weight > 0.0))
                    return fail("bad weight '" + value +
                                "' (> 0)");
            } else if (key == "slo_ms") {
                if (!parseDouble(value, w.spec.sloMs) ||
                    !(w.spec.sloMs >= 0.0))
                    return fail("bad slo_ms '" + value +
                                "' (ms >= 0; 0 = service SLO)");
            } else {
                return fail("unknown workload key '" + key + "'");
            }
            break;
          }
          case Section::Service: {
            ServiceDraft &s = services.back();
            if (isSweep) {
                if (sweepsKey(s.sweeps, key))
                    return fail("duplicate sweep key '" + key + "'");
                if (contains(s.assigned, key))
                    return fail("'" + key +
                                "' is both set and swept in this "
                                "section");
                for (const auto &v : sweep.values) {
                    ServiceSpec scratch = s.spec;
                    const std::string err =
                        applyServiceKey(scratch, key, v);
                    if (!err.empty())
                        return fail(err);
                }
                s.sweeps.push_back(std::move(sweep));
            } else {
                if (sweepsKey(s.sweeps, key))
                    return fail("'" + key +
                                "' is both set and swept in this "
                                "section");
                const std::string err =
                    applyServiceKey(s.spec, key, value);
                if (!err.empty())
                    return fail(err);
                if (!contains(s.assigned, key))
                    s.assigned.push_back(key);
            }
            break;
          }
          case Section::Nn: {
            NnDraft &n = nnCells.back();
            if (isSweep) {
                if (sweepsKey(n.sweeps, key))
                    return fail("duplicate sweep key '" + key + "'");
                if (contains(n.assigned, key))
                    return fail("'" + key +
                                "' is both set and swept in this "
                                "section");
                for (const auto &v : sweep.values) {
                    NnSpec scratch = n.spec;
                    const std::string err =
                        applyNnKey(scratch, key, v);
                    if (!err.empty())
                        return fail(err);
                }
                n.sweeps.push_back(std::move(sweep));
            } else {
                if (sweepsKey(n.sweeps, key))
                    return fail("'" + key +
                                "' is both set and swept in this "
                                "section");
                const std::string err =
                    applyNnKey(n.spec, key, value);
                if (!err.empty())
                    return fail(err);
                if (!contains(n.assigned, key))
                    n.assigned.push_back(key);
            }
            break;
          }
        }
    }

    // [workload] sections feed batch and service mode; an nn-only
    // scenario legitimately has none.
    if (workloads.empty() && nnCells.empty()) {
        error = "scenario declares no [workload] or [nn] sections";
        return std::nullopt;
    }
    if (variants.empty()) {
        VariantDraft v;
        v.name = "default";
        v.config = defaults;
        v.lineno = lineno;
        variants.push_back(std::move(v));
    }

    // ---- Grid expansion ----

    const auto failAt = [&](int at, const std::string &msg) {
        error = "line " + std::to_string(at) + ": " + msg;
        return std::nullopt;
    };

    for (const auto &draft : variants) {
        // Device-level sweeps are inherited unless the variant set or
        // swept the key itself; variant sweeps follow, in order.
        std::vector<Sweep> sweeps;
        for (const auto &s : deviceSweeps)
            if (!contains(draft.assigned, s.key) &&
                !sweepsKey(draft.sweeps, s.key))
                sweeps.push_back(s);
        for (const auto &s : draft.sweeps)
            sweeps.push_back(s);

        const u64 combos = gridSize(sweeps);
        if (combos == 0)
            return failAt(draft.lineno,
                          "sweep grid of variant '" + draft.name +
                              "' exceeds 4096 combinations");
        for (u64 c = 0; c < combos; ++c) {
            DeviceSpec spec;
            spec.name = draft.name;
            spec.config = draft.config;
            // Odometer: first-declared key varies slowest.
            u64 rest = c;
            for (std::size_t k = 0; k < sweeps.size(); ++k) {
                u64 span = 1;
                for (std::size_t j = k + 1; j < sweeps.size(); ++j)
                    span *= sweeps[j].values.size();
                const std::string &v =
                    sweeps[k].values[(rest / span) %
                                     sweeps[k].values.size()];
                rest %= span;
                const std::string err =
                    applyDeviceKey(spec.config, sweeps[k].key, v);
                if (!err.empty()) // validated above; belt and braces
                    return failAt(sweeps[k].lineno, err);
                spec.name += "/" + sweeps[k].key + "=" + v;
            }
            for (const auto &d : cfg.devices)
                if (d.name == spec.name)
                    return failAt(draft.lineno,
                                  "duplicate variant '" + spec.name +
                                      "' after grid expansion");
            cfg.devices.push_back(std::move(spec));
        }
    }

    for (const auto &draft : workloads) {
        const u64 combos = gridSize(draft.sweeps);
        if (combos == 0)
            return failAt(draft.lineno,
                          "sweep grid of workload '" +
                              draft.spec.name +
                              "' exceeds 4096 combinations");
        for (u64 c = 0; c < combos; ++c) {
            WorkloadSpec spec = draft.spec;
            u64 rest = c;
            for (std::size_t k = 0; k < draft.sweeps.size(); ++k) {
                u64 span = 1;
                for (std::size_t j = k + 1; j < draft.sweeps.size();
                     ++j)
                    span *= draft.sweeps[j].values.size();
                const Sweep &s = draft.sweeps[k];
                const std::string &v =
                    s.values[(rest / span) % s.values.size()];
                rest %= span;
                const std::string err =
                    applyWorkloadSweepKey(spec, s.key, v);
                if (!err.empty())
                    return failAt(s.lineno, err);
            }
            cfg.workloads.push_back(std::move(spec));
        }
    }

    for (const auto &draft : services) {
        const u64 combos = gridSize(draft.sweeps);
        if (combos == 0)
            return failAt(draft.lineno,
                          "sweep grid of service '" +
                              draft.spec.name +
                              "' exceeds 4096 combinations");
        for (u64 c = 0; c < combos; ++c) {
            ServiceSpec spec = draft.spec;
            u64 rest = c;
            for (std::size_t k = 0; k < draft.sweeps.size(); ++k) {
                u64 span = 1;
                for (std::size_t j = k + 1; j < draft.sweeps.size();
                     ++j)
                    span *= draft.sweeps[j].values.size();
                const Sweep &s = draft.sweeps[k];
                const std::string &v =
                    s.values[(rest / span) % s.values.size()];
                rest %= span;
                const std::string err =
                    applyServiceKey(spec, s.key, v);
                if (!err.empty())
                    return failAt(s.lineno, err);
                spec.name += "/" + s.key + "=" + v;
            }
            for (const auto &other : cfg.services)
                if (other.name == spec.name)
                    return failAt(draft.lineno,
                                  "duplicate service '" + spec.name +
                                      "' after grid expansion");
            cfg.services.push_back(std::move(spec));
        }
    }

    for (const auto &draft : nnCells) {
        const u64 combos = gridSize(draft.sweeps);
        if (combos == 0)
            return failAt(draft.lineno,
                          "sweep grid of nn cell '" +
                              draft.spec.name +
                              "' exceeds 4096 combinations");
        for (u64 c = 0; c < combos; ++c) {
            NnSpec spec = draft.spec;
            u64 rest = c;
            for (std::size_t k = 0; k < draft.sweeps.size(); ++k) {
                u64 span = 1;
                for (std::size_t j = k + 1; j < draft.sweeps.size();
                     ++j)
                    span *= draft.sweeps[j].values.size();
                const Sweep &s = draft.sweeps[k];
                const std::string &v =
                    s.values[(rest / span) % s.values.size()];
                rest %= span;
                const std::string err = applyNnKey(spec, s.key, v);
                if (!err.empty())
                    return failAt(s.lineno, err);
                spec.name += "/" + s.key + "=" + v;
            }
            for (const auto &other : cfg.nnCells)
                if (other.name == spec.name)
                    return failAt(draft.lineno,
                                  "duplicate nn cell '" + spec.name +
                                      "' after grid expansion");
            cfg.nnCells.push_back(std::move(spec));
        }
    }

    error.clear();
    return cfg;
}

std::optional<SimConfig>
SimConfig::load(const std::string &path, std::string &error)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        error = "cannot open scenario file '" + path + "'";
        return std::nullopt;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    return parse(buf.str(), error);
}

} // namespace pluto::sim
