/**
 * @file
 * Scenario-file parser (see config.hh).
 */

#include "sim/config.hh"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "workloads/workload.hh"

namespace pluto::sim
{

namespace
{

/** Strip comments and surrounding whitespace. */
std::string
cleanLine(const std::string &raw)
{
    std::string s = raw;
    const auto hash = s.find_first_of("#;");
    if (hash != std::string::npos)
        s.erase(hash);
    const auto b = s.find_first_not_of(" \t\r");
    if (b == std::string::npos)
        return {};
    const auto e = s.find_last_not_of(" \t\r");
    return s.substr(b, e - b + 1);
}

bool
parseU64(const std::string &s, u64 &out)
{
    // Digits only: strtoull would silently wrap "-1" to ULLONG_MAX.
    if (s.empty() ||
        s.find_first_not_of("0123456789") != std::string::npos)
        return false;
    errno = 0;
    char *end = nullptr;
    const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
    if (end != s.c_str() + s.size() || errno == ERANGE)
        return false;
    out = v;
    return true;
}

bool
parseU32(const std::string &s, u32 &out)
{
    u64 v = 0;
    if (!parseU64(s, v) || v > 0xffffffffull)
        return false;
    out = static_cast<u32>(v);
    return true;
}

bool
parseDouble(const std::string &s, double &out)
{
    if (s.empty())
        return false;
    char *end = nullptr;
    const double v = std::strtod(s.c_str(), &end);
    if (end != s.c_str() + s.size())
        return false;
    out = v;
    return true;
}

bool
parseBool(const std::string &s, bool &out)
{
    if (s == "on" || s == "true" || s == "1") {
        out = true;
        return true;
    }
    if (s == "off" || s == "false" || s == "0") {
        out = false;
        return true;
    }
    return false;
}

/** Apply one [device]/[variant] key. @return error text or empty. */
std::string
applyDeviceKey(runtime::DeviceConfig &cfg, const std::string &key,
               const std::string &value)
{
    if (key == "memory") {
        if (value == "ddr4")
            cfg.memory = dram::MemoryKind::Ddr4;
        else if (value == "3ds" || value == "hmc3ds")
            cfg.memory = dram::MemoryKind::Hmc3ds;
        else
            return "bad memory '" + value + "' (ddr4 | 3ds)";
    } else if (key == "design") {
        if (value == "bsa")
            cfg.design = core::Design::Bsa;
        else if (value == "gsa")
            cfg.design = core::Design::Gsa;
        else if (value == "gmc")
            cfg.design = core::Design::Gmc;
        else
            return "bad design '" + value + "' (bsa | gsa | gmc)";
    } else if (key == "salp") {
        if (!parseU32(value, cfg.salp))
            return "bad salp '" + value + "' (unsigned integer)";
    } else if (key == "faw") {
        // The negated form also rejects NaN, which strtod accepts.
        if (!parseDouble(value, cfg.fawScale) ||
            !(cfg.fawScale >= 0.0 && cfg.fawScale <= 1.0))
            return "bad faw '" + value + "' (0..1)";
    } else if (key == "refresh") {
        if (!parseBool(value, cfg.modelRefresh))
            return "bad refresh '" + value + "' (on | off)";
    } else if (key == "load_method") {
        if (value == "generate")
            cfg.loadMethod = core::LutLoadMethod::FirstTimeGeneration;
        else if (value == "memory")
            cfg.loadMethod = core::LutLoadMethod::FromMemory;
        else if (value == "storage")
            cfg.loadMethod = core::LutLoadMethod::FromStorage;
        else
            return "bad load_method '" + value +
                   "' (generate | memory | storage)";
    } else {
        return "unknown device key '" + key + "'";
    }
    return {};
}

} // namespace

u64
SimConfig::totalRuns() const
{
    u64 per_variant = 0;
    for (const auto &w : workloads)
        per_variant += static_cast<u64>(w.repeats) * repeats;
    return per_variant * devices.size();
}

std::optional<SimConfig>
SimConfig::parse(const std::string &text, std::string &error)
{
    enum class Section
    {
        None,
        Scenario,
        Device,
        Variant,
        Workload,
    };

    SimConfig cfg;
    runtime::DeviceConfig defaults;
    Section section = Section::None;
    int lineno = 0;

    const auto fail = [&](const std::string &msg) {
        error = "line " + std::to_string(lineno) + ": " + msg;
        return std::nullopt;
    };

    std::istringstream in(text);
    std::string raw;
    while (std::getline(in, raw)) {
        ++lineno;
        const std::string line = cleanLine(raw);
        if (line.empty())
            continue;

        if (line.front() == '[') {
            if (line.back() != ']')
                return fail("unterminated section header");
            const std::string inner = line.substr(1, line.size() - 2);
            const auto sp = inner.find_first_of(" \t");
            const std::string head =
                sp == std::string::npos ? inner : inner.substr(0, sp);
            std::string arg;
            if (sp != std::string::npos) {
                const auto b = inner.find_first_not_of(" \t", sp);
                if (b != std::string::npos)
                    arg = inner.substr(b);
            }
            if (head == "scenario") {
                if (!arg.empty())
                    return fail("[scenario] takes no argument");
                section = Section::Scenario;
            } else if (head == "device") {
                if (!arg.empty())
                    return fail("[device] takes no argument");
                if (!cfg.devices.empty())
                    return fail(
                        "[device] must precede [variant] sections");
                section = Section::Device;
            } else if (head == "variant") {
                if (arg.empty())
                    return fail("[variant] needs a name");
                for (const auto &d : cfg.devices)
                    if (d.name == arg)
                        return fail("duplicate variant '" + arg + "'");
                cfg.devices.push_back({arg, defaults});
                section = Section::Variant;
            } else if (head == "workload") {
                if (arg.empty())
                    return fail("[workload] needs a name");
                if (!workloads::createWorkload(arg))
                    return fail("unknown workload '" + arg +
                                "' (see pluto_sim --list)");
                cfg.workloads.push_back({arg, 0, 1});
                section = Section::Workload;
            } else {
                return fail("unknown section [" + head + "]");
            }
            continue;
        }

        const auto eq = line.find('=');
        if (eq == std::string::npos)
            return fail("expected 'key = value'");
        const std::string key = cleanLine(line.substr(0, eq));
        const std::string value = cleanLine(line.substr(eq + 1));
        if (key.empty())
            return fail("empty key");
        if (value.empty())
            return fail("empty value for '" + key + "'");

        switch (section) {
          case Section::None:
            return fail("'" + key + "' outside any section");
          case Section::Scenario:
            if (key == "name") {
                cfg.name = value;
            } else if (key == "out_dir") {
                cfg.outDir = value;
            } else if (key == "repeats") {
                if (!parseU32(value, cfg.repeats) || cfg.repeats == 0)
                    return fail("bad repeats '" + value +
                                "' (integer >= 1)");
            } else {
                return fail("unknown scenario key '" + key + "'");
            }
            break;
          case Section::Device: {
            const std::string err =
                applyDeviceKey(defaults, key, value);
            if (!err.empty())
                return fail(err);
            break;
          }
          case Section::Variant: {
            const std::string err = applyDeviceKey(
                cfg.devices.back().config, key, value);
            if (!err.empty())
                return fail(err);
            break;
          }
          case Section::Workload: {
            auto &w = cfg.workloads.back();
            if (key == "elements") {
                if (!parseU64(value, w.elements) || w.elements == 0)
                    return fail("bad elements '" + value +
                                "' (integer >= 1)");
            } else if (key == "repeats") {
                if (!parseU32(value, w.repeats) || w.repeats == 0)
                    return fail("bad repeats '" + value +
                                "' (integer >= 1)");
            } else {
                return fail("unknown workload key '" + key + "'");
            }
            break;
          }
        }
    }

    if (cfg.workloads.empty()) {
        error = "scenario declares no [workload] sections";
        return std::nullopt;
    }
    if (cfg.devices.empty())
        cfg.devices.push_back({"default", defaults});
    error.clear();
    return cfg;
}

std::optional<SimConfig>
SimConfig::load(const std::string &path, std::string &error)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        error = "cannot open scenario file '" + path + "'";
        return std::nullopt;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    return parse(buf.str(), error);
}

} // namespace pluto::sim
