/**
 * @file
 * Graph optimization passes for the pLUTo Compiler. Every pLUTo ISA
 * instruction costs real DRAM command sequences (sweeps, AAPs,
 * shifts), so classical redundancy elimination translates directly
 * into saved activations:
 *
 *  - dead-code elimination: drop nodes not reachable from outputs;
 *  - common-subexpression elimination: merge structurally identical
 *    nodes (same kind/operands/width/amount/LUT);
 *  - algebraic simplification: collapse shift-of-shift chains, drop
 *    zero-amount shifts, and cancel double NOTs.
 *
 * optimize() is semantics-preserving: tests assert the optimized
 * graph evaluates identically to the original on random inputs.
 */

#ifndef PLUTO_COMPILER_PASSES_HH
#define PLUTO_COMPILER_PASSES_HH

#include "compiler/graph.hh"

namespace pluto::compiler
{

/** Which passes optimize() runs. */
struct OptOptions
{
    bool deadCodeElimination = true;
    bool commonSubexpressionElimination = true;
    bool algebraicSimplification = true;
};

/** Counters describing what optimize() did. */
struct OptStats
{
    u32 removedDead = 0;
    u32 mergedCse = 0;
    u32 simplified = 0;

    u32 total() const { return removedDead + mergedCse + simplified; }
};

/**
 * Optimize `g` under `opts`.
 *
 * @param stats Optional out-param receiving pass counters.
 * @return a new, semantically equivalent graph.
 */
Graph optimize(const Graph &g, const OptOptions &opts = {},
               OptStats *stats = nullptr);

} // namespace pluto::compiler

#endif // PLUTO_COMPILER_PASSES_HH
