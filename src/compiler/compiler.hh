/**
 * @file
 * The pLUTo Compiler (Section 6.3): lowers a dataflow Graph to a
 * pLUTo ISA Program. It performs
 *  1. dependency analysis (liveness over the topological order),
 *  2. operand alignment: macro Add/Mul/MulQ nodes expand to the
 *     Figure 5 sequence move + pluto_bit_shift_l + pluto_or (cheap
 *     TRA merge) + pluto_op,
 *  3. row-register allocation with liveness-driven reuse, and
 *  4. LUT subarray allocation (one pluto_subarray_alloc per distinct
 *     LUT, hoisted to the program prologue).
 */

#ifndef PLUTO_COMPILER_COMPILER_HH
#define PLUTO_COMPILER_COMPILER_HH

#include <map>
#include <string>

#include "compiler/graph.hh"
#include "isa/program.hh"

namespace pluto::compiler
{

/** Result of compiling a Graph. */
struct CompiledProgram
{
    isa::Program program;
    /** Input name -> row register holding it. */
    std::map<std::string, i32> inputRegs;
    /** Output name -> row register holding it. */
    std::map<std::string, i32> outputRegs;
    /** LUT name -> subarray register. */
    std::map<std::string, i32> lutRegs;
    /** Physical row registers allocated (after reuse). */
    u32 physicalRowRegs = 0;
    /** Row registers a naive one-per-value allocation would need. */
    u32 naiveRowRegs = 0;
};

/** Compiler options. */
struct CompileOptions
{
    /** Reuse dead row registers (disable to measure the benefit). */
    bool reuseRegisters = true;
};

/** Compile `g` into a pLUTo ISA program. */
CompiledProgram compile(const Graph &g, const CompileOptions &opts = {});

} // namespace pluto::compiler

#endif // PLUTO_COMPILER_COMPILER_HH
