/**
 * @file
 * Reference evaluator for compiler Graphs: executes the dataflow
 * directly on host vectors, modeling rows exactly as the DRAM does
 * (shifts operate on the packed row, so cross-slot bit movement is
 * reproduced faithfully). Used to validate compiled programs.
 */

#ifndef PLUTO_COMPILER_REFERENCE_HH
#define PLUTO_COMPILER_REFERENCE_HH

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "compiler/graph.hh"
#include "pluto/lut.hh"

namespace pluto::compiler
{

/** Resolves a LUT name to its contents (e.g. a LutLibrary lookup). */
using LutResolver =
    std::function<const core::Lut &(const std::string &)>;

/**
 * Evaluate `g` over the given input vectors.
 *
 * @param g The dataflow graph.
 * @param inputs Input name -> element values (graph element count).
 * @param resolve LUT name resolver.
 * @param row_bytes Packed-row width used for shift semantics.
 * @return output name -> element values.
 */
std::map<std::string, std::vector<u64>>
evaluate(const Graph &g,
         const std::map<std::string, std::vector<u64>> &inputs,
         const LutResolver &resolve, u32 row_bytes);

} // namespace pluto::compiler

#endif // PLUTO_COMPILER_REFERENCE_HH
