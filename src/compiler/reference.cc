#include "compiler/reference.hh"

#include "common/bitvec.hh"
#include "common/logging.hh"
#include "ops/rowmath.hh"

namespace pluto::compiler
{

namespace
{

u64
maskOf(u32 width)
{
    return width >= 64 ? ~0ULL : ((1ULL << width) - 1);
}

/** Apply a row-level shift to packed element values. */
std::vector<u64>
rowShift(const std::vector<u64> &values, u32 width, u32 bits, bool left,
         u32 row_bytes)
{
    const u64 per_row = elementsPerBytes(row_bytes, width);
    std::vector<u64> out;
    out.reserve(values.size());
    for (u64 base = 0; base < values.size(); base += per_row) {
        const u64 count = std::min<u64>(per_row, values.size() - base);
        std::vector<u64> chunk(values.begin() + base,
                               values.begin() + base + count);
        chunk.resize(per_row, 0);
        auto packed = packElements(chunk, width);
        packed.resize(row_bytes, 0);
        if (left)
            ops::rowShiftLeft(packed, bits);
        else
            ops::rowShiftRight(packed, bits);
        const auto unpacked = unpackElements(packed, width);
        out.insert(out.end(), unpacked.begin(),
                   unpacked.begin() + count);
    }
    return out;
}

} // namespace

std::map<std::string, std::vector<u64>>
evaluate(const Graph &g,
         const std::map<std::string, std::vector<u64>> &inputs,
         const LutResolver &resolve, u32 row_bytes)
{
    std::vector<std::vector<u64>> values(g.size());

    for (u32 i = 0; i < g.size(); ++i) {
        const Node &n = g.node(i);
        const u64 m = maskOf(n.width);
        auto operand = [&](u32 k) -> const std::vector<u64> & {
            return values[n.operands[k]];
        };
        switch (n.kind) {
          case Node::Kind::Input: {
            const auto it = inputs.find(n.name);
            if (it == inputs.end())
                fatal("evaluate: missing input '%s'", n.name.c_str());
            if (it->second.size() != g.elements())
                fatal("evaluate: input '%s' has %zu values, graph has "
                      "%llu elements", n.name.c_str(), it->second.size(),
                      static_cast<unsigned long long>(g.elements()));
            values[i] = it->second;
            for (auto &v : values[i])
                v &= m;
            break;
          }
          case Node::Kind::Add:
          case Node::Kind::Mul:
          case Node::Kind::MulQ:
          case Node::Kind::Bitcount:
          case Node::Kind::LutQuery: {
            const core::Lut &lut = resolve(n.lutName);
            const auto &a = operand(0);
            std::vector<u64> r(a.size());
            if (n.kind == Node::Kind::Add || n.kind == Node::Kind::Mul ||
                n.kind == Node::Kind::MulQ) {
                const auto &b = operand(1);
                const u32 nb = n.operandBits;
                for (std::size_t k = 0; k < a.size(); ++k)
                    r[k] = lut.at(((a[k] & maskOf(nb)) << nb) |
                                  (b[k] & maskOf(nb)));
            } else {
                for (std::size_t k = 0; k < a.size(); ++k)
                    r[k] = lut.at(a[k]);
            }
            values[i] = std::move(r);
            break;
          }
          case Node::Kind::And:
          case Node::Kind::Or:
          case Node::Kind::Xor: {
            const auto &a = operand(0);
            const auto &b = operand(1);
            std::vector<u64> r(a.size());
            for (std::size_t k = 0; k < a.size(); ++k) {
                if (n.kind == Node::Kind::And)
                    r[k] = a[k] & b[k];
                else if (n.kind == Node::Kind::Or)
                    r[k] = a[k] | b[k];
                else
                    r[k] = (a[k] ^ b[k]) & m;
            }
            values[i] = std::move(r);
            break;
          }
          case Node::Kind::Not: {
            const auto &a = operand(0);
            std::vector<u64> r(a.size());
            for (std::size_t k = 0; k < a.size(); ++k)
                r[k] = (~a[k]) & m;
            values[i] = std::move(r);
            break;
          }
          case Node::Kind::ShiftL:
          case Node::Kind::ShiftR:
            values[i] = rowShift(operand(0), n.width, n.amount,
                                 n.kind == Node::Kind::ShiftL,
                                 row_bytes);
            break;
        }
    }

    std::map<std::string, std::vector<u64>> out;
    for (const auto &[name, id] : g.outputs())
        out[name] = values[id];
    return out;
}

} // namespace pluto::compiler
