#include "compiler/compiler.hh"

#include <set>

#include "common/logging.hh"

namespace pluto::compiler
{

namespace
{

/** Tracks physical row registers and their reuse. */
class RegisterPool
{
  public:
    RegisterPool(isa::Program &prog, u64 elements, bool reuse)
        : prog_(prog), elements_(elements), reuse_(reuse)
    {
    }

    /** Acquire a register of `width`-bit slots (alloc if needed). */
    i32
    acquire(u32 width)
    {
        auto &free = free_[width];
        if (reuse_ && !free.empty()) {
            const i32 reg = *free.begin();
            free.erase(free.begin());
            return reg;
        }
        const i32 reg = prog_.newRowReg();
        prog_.append(isa::makeRowAlloc(reg, elements_, width));
        ++allocated_;
        return reg;
    }

    /** Return a dead register to the pool. */
    void
    release(i32 reg, u32 width)
    {
        free_[width].insert(reg);
    }

    u32 allocated() const { return allocated_; }

  private:
    isa::Program &prog_;
    u64 elements_;
    bool reuse_;
    std::map<u32, std::set<i32>> free_;
    u32 allocated_ = 0;
};

/** LUT sizes per standard name are known to the runtime library; the
 *  compiler only needs 2^indexBits, which is derivable from the node
 *  shape. */
u32
lutSizeFor(const Node &n)
{
    switch (n.kind) {
      case Node::Kind::Add:
      case Node::Kind::Mul:
      case Node::Kind::MulQ:
        return 1u << (2 * n.operandBits);
      case Node::Kind::Bitcount:
        return 1u << n.width;
      default:
        panic("lutSizeFor: node has no LUT");
    }
}

} // namespace

CompiledProgram
compile(const Graph &g, const CompileOptions &opts)
{
    CompiledProgram out;
    isa::Program &prog = out.program;
    const auto last = g.lastUses();

    // Determine each distinct LUT's row count from the node shapes.
    std::map<std::string, u32> lut_sizes;
    for (u32 i = 0; i < g.size(); ++i) {
        const Node &n = g.node(i);
        if (n.lutName.empty())
            continue;
        const u32 size = n.kind == Node::Kind::LutQuery ? n.lutSize
                                                        : lutSizeFor(n);
        const auto it = lut_sizes.find(n.lutName);
        if (it == lut_sizes.end())
            lut_sizes[n.lutName] = size;
        else if (it->second != size)
            fatal("compile: LUT '%s' used with conflicting sizes "
                  "(%u vs %u)", n.lutName.c_str(), it->second, size);
    }

    // Prologue: one pluto_subarray_alloc per distinct LUT.
    for (const auto &[name, size] : lut_sizes) {
        const i32 reg = prog.newSubarrayReg();
        out.lutRegs[name] = reg;
        prog.append(isa::makeSubarrayAlloc(reg, size, name));
    }

    RegisterPool pool(prog, g.elements(), opts.reuseRegisters);

    // Node id -> physical register currently holding its value.
    std::vector<i32> reg_of(g.size(), -1);

    // Inputs get pinned registers.
    for (u32 i = 0; i < g.size(); ++i) {
        const Node &n = g.node(i);
        if (n.kind != Node::Kind::Input)
            continue;
        reg_of[i] = pool.acquire(n.width);
        out.inputRegs[n.name] = reg_of[i];
    }

    // A naive allocation uses one register per value plus one
    // alignment temp per macro node.
    out.naiveRowRegs = g.size();
    for (u32 i = 0; i < g.size(); ++i) {
        const auto k = g.node(i).kind;
        if (k == Node::Kind::Add || k == Node::Kind::Mul ||
            k == Node::Kind::MulQ)
            ++out.naiveRowRegs;
    }

    auto release_dead = [&](u32 now) {
        if (!opts.reuseRegisters)
            return;
        for (u32 i = 0; i < g.size(); ++i) {
            if (reg_of[i] >= 0 && last[i] == now &&
                g.node(i).kind != Node::Kind::Input) {
                pool.release(reg_of[i], g.node(i).width);
                reg_of[i] = -2; // dead
            }
        }
    };

    for (u32 i = 0; i < g.size(); ++i) {
        const Node &n = g.node(i);
        auto src = [&](u32 k) {
            const NodeId op = n.operands[k];
            PLUTO_ASSERT(reg_of[op] >= 0);
            return reg_of[op];
        };
        switch (n.kind) {
          case Node::Kind::Input:
            break;
          case Node::Kind::Add:
          case Node::Kind::Mul:
          case Node::Kind::MulQ: {
            // Figure 5 alignment: tmp <- a; tmp <<= n;
            // tmp <- tmp | b; dst <- LUT[tmp].
            const i32 tmp = pool.acquire(n.width);
            prog.append(isa::makeMove(tmp, src(0)));
            prog.append(isa::makeShift(isa::Opcode::BitShiftL, tmp,
                                       n.operandBits));
            prog.append(isa::makeBitwise(isa::Opcode::MergeOr, tmp, tmp,
                                         src(1)));
            const i32 dst = pool.acquire(n.width);
            prog.append(isa::makeLutOp(dst, tmp, out.lutRegs[n.lutName],
                                       lut_sizes[n.lutName], n.width));
            pool.release(tmp, n.width);
            reg_of[i] = dst;
            break;
          }
          case Node::Kind::Bitcount:
          case Node::Kind::LutQuery: {
            const i32 dst = pool.acquire(n.width);
            prog.append(isa::makeLutOp(dst, src(0),
                                       out.lutRegs[n.lutName],
                                       lut_sizes[n.lutName], n.width));
            reg_of[i] = dst;
            break;
          }
          case Node::Kind::And:
          case Node::Kind::Or:
          case Node::Kind::Xor: {
            const i32 dst = pool.acquire(n.width);
            const isa::Opcode op = n.kind == Node::Kind::And
                                       ? isa::Opcode::And
                                       : n.kind == Node::Kind::Or
                                             ? isa::Opcode::Or
                                             : isa::Opcode::Xor;
            prog.append(isa::makeBitwise(op, dst, src(0), src(1)));
            reg_of[i] = dst;
            break;
          }
          case Node::Kind::Not: {
            const i32 dst = pool.acquire(n.width);
            prog.append(isa::makeBitwise(isa::Opcode::Not, dst, src(0)));
            reg_of[i] = dst;
            break;
          }
          case Node::Kind::ShiftL:
          case Node::Kind::ShiftR: {
            // Shifts mutate in place: copy first to preserve the
            // operand's value for other readers.
            const i32 dst = pool.acquire(n.width);
            prog.append(isa::makeMove(dst, src(0)));
            prog.append(isa::makeShift(n.kind == Node::Kind::ShiftL
                                           ? isa::Opcode::BitShiftL
                                           : isa::Opcode::BitShiftR,
                                       dst, n.amount));
            reg_of[i] = dst;
            break;
          }
        }
        release_dead(i);
    }

    for (const auto &[name, id] : g.outputs()) {
        PLUTO_ASSERT(reg_of[id] >= 0);
        out.outputRegs[name] = reg_of[id];
    }
    out.physicalRowRegs = pool.allocated();
    return out;
}

} // namespace pluto::compiler
