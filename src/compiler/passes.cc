#include "compiler/passes.hh"

#include <map>
#include <tuple>

#include "common/logging.hh"

namespace pluto::compiler
{

namespace
{

/** Structural key for CSE. */
using NodeKey = std::tuple<Node::Kind, std::vector<NodeId>, u32, u32,
                           u32, std::string>;

NodeKey
keyOf(const Node &n, const std::vector<NodeId> &mapped_operands)
{
    // Inputs are never merged: key on their unique name instead.
    const std::string tag =
        n.kind == Node::Kind::Input ? n.name : n.lutName;
    return {n.kind, mapped_operands, n.width, n.operandBits, n.amount,
            tag};
}

/** Replay node `n` (with remapped operands) into `out`. */
NodeId
replay(Graph &out, const Node &n, const std::vector<NodeId> &ops)
{
    switch (n.kind) {
      case Node::Kind::Input:
        return out.input(n.name, n.width);
      case Node::Kind::Add:
        return out.add(ops[0], ops[1], n.operandBits);
      case Node::Kind::Mul:
        return out.mul(ops[0], ops[1], n.operandBits);
      case Node::Kind::MulQ:
        return out.mulQ(ops[0], ops[1], n.operandBits);
      case Node::Kind::Bitcount:
        return out.bitcount(ops[0], n.width);
      case Node::Kind::LutQuery:
        return out.lutQuery(ops[0], n.lutName, n.width, n.lutSize);
      case Node::Kind::And:
        return out.bitwiseAnd(ops[0], ops[1]);
      case Node::Kind::Or:
        return out.bitwiseOr(ops[0], ops[1]);
      case Node::Kind::Xor:
        return out.bitwiseXor(ops[0], ops[1]);
      case Node::Kind::Not:
        return out.bitwiseNot(ops[0]);
      case Node::Kind::ShiftL:
        return out.shiftLeft(ops[0], n.amount);
      case Node::Kind::ShiftR:
        return out.shiftRight(ops[0], n.amount);
    }
    panic("bad node kind");
}

} // namespace

Graph
optimize(const Graph &g, const OptOptions &opts, OptStats *stats)
{
    OptStats local;

    // Pass 1: liveness from outputs (DCE).
    std::vector<bool> live(g.size(), !opts.deadCodeElimination);
    if (opts.deadCodeElimination) {
        std::vector<NodeId> work;
        for (const auto &[name, id] : g.outputs()) {
            if (!live[id]) {
                live[id] = true;
                work.push_back(id);
            }
        }
        while (!work.empty()) {
            const NodeId id = work.back();
            work.pop_back();
            for (const NodeId op : g.node(id).operands) {
                if (!live[op]) {
                    live[op] = true;
                    work.push_back(op);
                }
            }
        }
        for (u32 i = 0; i < g.size(); ++i)
            local.removedDead += !live[i];
    }

    // Pass 2: rebuild with algebraic simplification + CSE.
    Graph out(g.elements());
    std::vector<NodeId> remap(g.size(), 0);
    std::vector<bool> emitted(g.size(), false);
    std::map<NodeKey, NodeId> seen;

    for (u32 i = 0; i < g.size(); ++i) {
        if (!live[i])
            continue;
        const Node &n = g.node(i);
        std::vector<NodeId> ops;
        ops.reserve(n.operands.size());
        for (const NodeId op : n.operands) {
            PLUTO_ASSERT(emitted[op]);
            ops.push_back(remap[op]);
        }

        if (opts.algebraicSimplification) {
            // shift by 0 is the identity.
            if ((n.kind == Node::Kind::ShiftL ||
                 n.kind == Node::Kind::ShiftR) &&
                n.amount == 0) {
                remap[i] = ops[0];
                emitted[i] = true;
                ++local.simplified;
                continue;
            }
            // NOT(NOT(x)) == x.
            if (n.kind == Node::Kind::Not) {
                // Find the already-emitted producer of ops[0].
                const Node &prev = out.node(ops[0]);
                if (prev.kind == Node::Kind::Not) {
                    remap[i] = prev.operands[0];
                    emitted[i] = true;
                    ++local.simplified;
                    continue;
                }
            }
            // shift(shift(x, a), b) same direction == shift(x, a+b).
            if (n.kind == Node::Kind::ShiftL ||
                n.kind == Node::Kind::ShiftR) {
                const Node &prev = out.node(ops[0]);
                if (prev.kind == n.kind) {
                    Node fused = n;
                    fused.amount = n.amount + prev.amount;
                    const auto key =
                        keyOf(fused, {prev.operands[0]});
                    const auto it = seen.find(key);
                    NodeId id;
                    if (opts.commonSubexpressionElimination &&
                        it != seen.end()) {
                        id = it->second;
                        ++local.mergedCse;
                    } else {
                        id = replay(out, fused, {prev.operands[0]});
                        seen.emplace(key, id);
                    }
                    remap[i] = id;
                    emitted[i] = true;
                    ++local.simplified;
                    continue;
                }
            }
        }

        const auto key = keyOf(n, ops);
        if (opts.commonSubexpressionElimination &&
            n.kind != Node::Kind::Input) {
            const auto it = seen.find(key);
            if (it != seen.end()) {
                remap[i] = it->second;
                emitted[i] = true;
                ++local.mergedCse;
                continue;
            }
        }
        const NodeId id = replay(out, n, ops);
        seen.emplace(key, id);
        remap[i] = id;
        emitted[i] = true;
    }

    for (const auto &[name, id] : g.outputs()) {
        PLUTO_ASSERT(emitted[id]);
        out.markOutput(remap[id], name);
    }
    if (stats)
        *stats = local;
    return out;
}

} // namespace pluto::compiler
