#include "compiler/graph.hh"

#include "common/bitvec.hh"
#include "common/logging.hh"

namespace pluto::compiler
{

Graph::Graph(u64 elements)
    : elements_(elements)
{
    if (elements == 0)
        fatal("graph: element count must be > 0");
}

NodeId
Graph::addNode(Node n)
{
    nodes_.push_back(std::move(n));
    return static_cast<NodeId>(nodes_.size() - 1);
}

void
Graph::checkOperand(NodeId id) const
{
    if (id >= nodes_.size())
        fatal("graph: operand node %u does not exist", id);
}

const Node &
Graph::node(NodeId id) const
{
    checkOperand(id);
    return nodes_[id];
}

NodeId
Graph::input(const std::string &name, u32 slot_width)
{
    if (!isSupportedElementWidth(slot_width))
        fatal("graph: unsupported input width %u", slot_width);
    Node n;
    n.kind = Node::Kind::Input;
    n.width = slot_width;
    n.name = name;
    return addNode(std::move(n));
}

NodeId
Graph::add(NodeId a, NodeId b, u32 operand_bits)
{
    checkOperand(a);
    checkOperand(b);
    const u32 slot = 2 * operand_bits;
    if (node(a).width != slot || node(b).width != slot)
        fatal("graph: add%u operands must use %u-bit slots",
              operand_bits, slot);
    Node n;
    n.kind = Node::Kind::Add;
    n.width = slot;
    n.operands = {a, b};
    n.operandBits = operand_bits;
    n.lutName = "add" + std::to_string(operand_bits);
    return addNode(std::move(n));
}

NodeId
Graph::mul(NodeId a, NodeId b, u32 operand_bits)
{
    checkOperand(a);
    checkOperand(b);
    const u32 slot = 2 * operand_bits;
    if (node(a).width != slot || node(b).width != slot)
        fatal("graph: mul%u operands must use %u-bit slots",
              operand_bits, slot);
    Node n;
    n.kind = Node::Kind::Mul;
    n.width = slot;
    n.operands = {a, b};
    n.operandBits = operand_bits;
    n.lutName = "mul" + std::to_string(operand_bits);
    return addNode(std::move(n));
}

NodeId
Graph::mulQ(NodeId a, NodeId b, u32 operand_bits)
{
    checkOperand(a);
    checkOperand(b);
    const u32 slot = 2 * operand_bits;
    if (node(a).width != slot || node(b).width != slot)
        fatal("graph: mulq%u operands must use %u-bit slots",
              operand_bits, slot);
    Node n;
    n.kind = Node::Kind::MulQ;
    n.width = slot;
    n.operands = {a, b};
    n.operandBits = operand_bits;
    n.lutName = "mulq" + std::to_string(operand_bits);
    return addNode(std::move(n));
}

NodeId
Graph::bitcount(NodeId a, u32 bits)
{
    checkOperand(a);
    if (bits != 4 && bits != 8)
        fatal("graph: bitcount supports 4- or 8-bit slots");
    if (node(a).width != bits)
        fatal("graph: bitcount%u operand must use %u-bit slots", bits,
              bits);
    Node n;
    n.kind = Node::Kind::Bitcount;
    n.width = bits;
    n.operands = {a};
    n.lutName = "bc" + std::to_string(bits);
    return addNode(std::move(n));
}

NodeId
Graph::lutQuery(NodeId a, const std::string &lut_name, u32 slot_width,
                u32 lut_size)
{
    checkOperand(a);
    if (node(a).width != slot_width)
        fatal("graph: lutQuery '%s' expects %u-bit slots, operand has "
              "%u", lut_name.c_str(), slot_width, node(a).width);
    if (lut_size == 0 || (lut_size & (lut_size - 1)) != 0)
        fatal("graph: lutQuery '%s' size %u is not a power of two",
              lut_name.c_str(), lut_size);
    Node n;
    n.kind = Node::Kind::LutQuery;
    n.width = slot_width;
    n.operands = {a};
    n.lutName = lut_name;
    n.lutSize = lut_size;
    return addNode(std::move(n));
}

NodeId
Graph::binary(Node::Kind kind, NodeId a, NodeId b)
{
    checkOperand(a);
    checkOperand(b);
    if (node(a).width != node(b).width)
        fatal("graph: bitwise operand width mismatch (%u vs %u)",
              node(a).width, node(b).width);
    Node n;
    n.kind = kind;
    n.width = node(a).width;
    n.operands = {a, b};
    return addNode(std::move(n));
}

NodeId
Graph::bitwiseAnd(NodeId a, NodeId b)
{
    return binary(Node::Kind::And, a, b);
}

NodeId
Graph::bitwiseOr(NodeId a, NodeId b)
{
    return binary(Node::Kind::Or, a, b);
}

NodeId
Graph::bitwiseXor(NodeId a, NodeId b)
{
    return binary(Node::Kind::Xor, a, b);
}

NodeId
Graph::bitwiseNot(NodeId a)
{
    checkOperand(a);
    Node n;
    n.kind = Node::Kind::Not;
    n.width = node(a).width;
    n.operands = {a};
    return addNode(std::move(n));
}

NodeId
Graph::shiftLeft(NodeId a, u32 bits)
{
    checkOperand(a);
    Node n;
    n.kind = Node::Kind::ShiftL;
    n.width = node(a).width;
    n.operands = {a};
    n.amount = bits;
    return addNode(std::move(n));
}

NodeId
Graph::shiftRight(NodeId a, u32 bits)
{
    checkOperand(a);
    Node n;
    n.kind = Node::Kind::ShiftR;
    n.width = node(a).width;
    n.operands = {a};
    n.amount = bits;
    return addNode(std::move(n));
}

void
Graph::markOutput(NodeId id, const std::string &name)
{
    checkOperand(id);
    outputs_.emplace_back(name, id);
}

std::vector<u32>
Graph::lastUses() const
{
    std::vector<u32> last(nodes_.size());
    for (u32 i = 0; i < nodes_.size(); ++i)
        last[i] = i;
    for (u32 i = 0; i < nodes_.size(); ++i)
        for (const NodeId op : nodes_[i].operands)
            last[op] = i;
    for (const auto &[name, id] : outputs_)
        last[id] = static_cast<u32>(nodes_.size());
    return last;
}

} // namespace pluto::compiler
