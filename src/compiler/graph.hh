/**
 * @file
 * Data-dependency graph for the pLUTo Compiler (Section 6.3).
 *
 * Programs are expressed as element-wise dataflow over equally sized
 * vectors: inputs, macro arithmetic ops (add/mul/mulQ/bitcount) that
 * the compiler lowers to aligned LUT queries, raw LUT queries,
 * bitwise logic, and shifts. The builder API guarantees acyclicity
 * (operands must already exist), so node-id order is a topological
 * order; the compiler still computes liveness over it to reuse row
 * registers.
 */

#ifndef PLUTO_COMPILER_GRAPH_HH
#define PLUTO_COMPILER_GRAPH_HH

#include <string>
#include <vector>

#include "common/types.hh"

namespace pluto::compiler
{

/** Identifier of a value node within a Graph. */
using NodeId = u32;

/** One dataflow node. */
struct Node
{
    enum class Kind
    {
        Input,
        Add,       ///< macro: n-bit unsigned addition
        Mul,       ///< macro: n-bit unsigned multiplication
        MulQ,      ///< macro: Q1.(n-1) fixed-point multiplication
        Bitcount,  ///< macro: popcount via BC LUT
        LutQuery,  ///< raw pluto_op against a named LUT
        And,
        Or,
        Xor,
        Not,
        ShiftL,    ///< row-level left shift by `amount` bits
        ShiftR,
    };

    Kind kind = Kind::Input;
    /** Element slot width in bits. */
    u32 width = 0;
    /** Operand node ids. */
    std::vector<NodeId> operands;
    /** Add/Mul/MulQ: operand bit width n. */
    u32 operandBits = 0;
    /** Shifts: amount in bits. */
    u32 amount = 0;
    /** LutQuery/macros: LUT name resolved by the runtime library. */
    std::string lutName;
    /** LutQuery: number of LUT elements (2^indexBits). */
    u32 lutSize = 0;
    /** Inputs: user-visible name. */
    std::string name;
};

/** A whole dataflow program over vectors of `elements` elements. */
class Graph
{
  public:
    /** @param elements Uniform vector length of every node. */
    explicit Graph(u64 elements);

    u64 elements() const { return elements_; }

    /** Declare an input vector of `slot_width`-bit slots. */
    NodeId input(const std::string &name, u32 slot_width);

    /**
     * n-bit unsigned addition a + b. Both operands must use 2n-bit
     * slots with values in the low n bits; the result uses 2n-bit
     * slots.
     */
    NodeId add(NodeId a, NodeId b, u32 operand_bits);

    /** n-bit unsigned multiplication. Same slot contract as add(). */
    NodeId mul(NodeId a, NodeId b, u32 operand_bits);

    /** Q1.(n-1) fixed-point multiplication. */
    NodeId mulQ(NodeId a, NodeId b, u32 operand_bits);

    /** Popcount of 4- or 8-bit slots. */
    NodeId bitcount(NodeId a, u32 bits);

    /**
     * Raw LUT query against a library LUT of matching slot width.
     * @param lut_size Number of LUT elements (2^indexBits).
     */
    NodeId lutQuery(NodeId a, const std::string &lut_name,
                    u32 slot_width, u32 lut_size);

    NodeId bitwiseAnd(NodeId a, NodeId b);
    NodeId bitwiseOr(NodeId a, NodeId b);
    NodeId bitwiseXor(NodeId a, NodeId b);
    NodeId bitwiseNot(NodeId a);

    NodeId shiftLeft(NodeId a, u32 bits);
    NodeId shiftRight(NodeId a, u32 bits);

    /** Mark `id` as a program output under `name`. */
    void markOutput(NodeId id, const std::string &name);

    const Node &node(NodeId id) const;
    u32 size() const { return static_cast<u32>(nodes_.size()); }

    /** (name, node) pairs of marked outputs. */
    const std::vector<std::pair<std::string, NodeId>> &outputs() const
    {
        return outputs_;
    }

    /**
     * Last-use index of every node (the highest node id that reads
     * it), or the node's own id if never read. Outputs are pinned
     * live to the end. Used by register allocation.
     */
    std::vector<u32> lastUses() const;

  private:
    NodeId addNode(Node n);
    void checkOperand(NodeId id) const;
    NodeId binary(Node::Kind kind, NodeId a, NodeId b);

    u64 elements_;
    std::vector<Node> nodes_;
    std::vector<std::pair<std::string, NodeId>> outputs_;
};

} // namespace pluto::compiler

#endif // PLUTO_COMPILER_GRAPH_HH
