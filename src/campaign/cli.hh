/**
 * @file
 * The campaign CLI driver library: everything mode-agnostic about
 * `pluto_sim` lives here, so the binary itself collapses to mode
 * registration + dispatch.
 *
 * The driver owns the shared flags (--threads / --shard /
 * --cache-dir / --deterministic / --out / --quiet), the workload
 * registry listings (--list / --list-workloads), scenario loading,
 * the banner, and the shared report tail (wall/cache summary lines,
 * shard-suffixed output writing, verification exit code). Modes
 * register themselves with a selector flag, help text and a run
 * callback; --help enumerates every registered mode, so no mode's
 * flags are invisible.
 *
 * Exit codes: 0 success, 1 usage/config/output errors (every unknown
 * flag included), 2 campaign ran but a cell failed verification.
 */

#ifndef PLUTO_CAMPAIGN_CLI_HH
#define PLUTO_CAMPAIGN_CLI_HH

#include <functional>
#include <string>
#include <vector>

#include "campaign/runner.hh"
#include "sim/config.hh"

namespace pluto::campaign
{

/** One parsed pluto_sim invocation (mode-agnostic part). */
struct CliInvocation
{
    std::string scenarioPath;
    RunOptions opt;
    /** --shard was given (outputs get a .shardIofN suffix). */
    bool sharded = false;
    /** Suppress per-cell progress lines. */
    bool quiet = false;
    /** --trace: Chrome trace-event JSON output path (empty = off). */
    std::string tracePath;
    /** --metrics-out: hierarchical counter JSON path (empty = off). */
    std::string metricsPath;
    /** --tail-report: tail-blame JSON path (service mode only). */
    std::string tailReportPath;
    /** --timeseries: virtual-time series CSV path (service mode). */
    std::string timeseriesPath;
};

/** One registered campaign mode. */
struct Mode
{
    /** Registry name ("batch", "service", "nn"). */
    std::string name;
    /** Selector flag ("--service"); empty = the default mode. */
    std::string flag;
    /** One-line description shown in --help. */
    std::string summary;
    /** Further help lines (scenario sections and keys the mode
     *  reads); printed indented under the mode in --help. */
    std::vector<std::string> notes;
    /** Banner cell count, e.g. "24  (4 variants x 3 workloads)". */
    std::function<std::string(const sim::SimConfig &)> banner;
    /** Execute the mode. @return the process exit code. */
    std::function<int(const sim::SimConfig &, const CliInvocation &)>
        run;
};

/**
 * Shared tail of every mode: print the wall/cache summary, write the
 * mode's outputs through `write` (which receives the shard suffix
 * and appends written paths), and turn verification into the exit
 * code. @return 0 ok, 1 write error, 2 verification failure.
 */
int finishCampaign(
    const CliInvocation &inv, const Stats &stats, bool allVerified,
    const std::function<std::string(const std::string &suffix,
                                    std::vector<std::string> &written)>
        &write);

/**
 * The pluto_sim main: parse flags, resolve the mode, load the
 * scenario, print the banner and dispatch. `modes` must contain
 * exactly one default mode (empty flag). @return the process exit
 * code.
 */
int cliMain(int argc, char **argv, const std::vector<Mode> &modes);

} // namespace pluto::campaign

#endif // PLUTO_CAMPAIGN_CLI_HH
