/**
 * @file
 * Campaign execution scaffolding (see runner.hh).
 */

#include "campaign/runner.hh"

#include <algorithm>
#include <exception>
#include <thread>

#include "obs/registry.hh"
#include "obs/trace.hh"

namespace pluto::campaign
{

std::string
RunOptions::validate() const
{
    if (shardCount == 0)
        return "shard count must be >= 1";
    if (shardIndex >= shardCount)
        return "shard index " + std::to_string(shardIndex) +
               " out of range (0.." + std::to_string(shardCount - 1) +
               ")";
    return {};
}

double
msSince(const std::chrono::steady_clock::time_point &t0)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

u32
resolveThreads(std::size_t count, u32 threads)
{
    if (threads == 0)
        threads = std::max(1u, std::thread::hardware_concurrency());
    return std::min<u32>(threads, std::max<std::size_t>(count, 1));
}

void
forEachTask(std::size_t count, u32 threads,
            const std::function<void(std::size_t, u32)> &fn)
{
    threads = resolveThreads(count, threads);

    // Telemetry: grow the shard pool here (the coordinator), so the
    // workers below can bind lock-free.
    auto &reg = obs::Registry::get();
    if (reg.enabled()) {
        reg.ensureWorkers(threads);
        reg.root().gaugeMax("campaign/workers",
                            static_cast<double>(threads));
    }

    std::atomic<std::size_t> next{0};
    std::mutex err_mu;
    std::exception_ptr first_error;

    const auto worker = [&](u32 w, bool spawned) {
        if (reg.enabled())
            reg.bindThread(w);
        if (spawned) {
            if (auto *tr = obs::tracer())
                tr->setThreadName("worker " + std::to_string(w));
        }
        for (;;) {
            const std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= count)
                return;
            try {
                fn(i, w);
            } catch (...) {
                // Record the first failure and drain the queue so
                // every worker exits promptly; the caller sees the
                // exception after the join below.
                std::lock_guard<std::mutex> lock(err_mu);
                if (!first_error)
                    first_error = std::current_exception();
                next.store(count, std::memory_order_relaxed);
                return;
            }
        }
    };
    if (threads == 1) {
        worker(0, false);
    } else {
        std::vector<std::thread> pool;
        pool.reserve(threads);
        for (u32 i = 0; i < threads; ++i)
            pool.emplace_back(worker, i, true);
        for (auto &th : pool)
            th.join();
    }
    // Task boundary: the workers are gone (or, single-threaded, done),
    // so folding their shards into the root needs no atomics.
    if (reg.enabled()) {
        reg.bindThreadToRoot();
        reg.mergeWorkers();
    }
    if (first_error)
        std::rethrow_exception(first_error);
}

} // namespace pluto::campaign
