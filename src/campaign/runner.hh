/**
 * @file
 * The generic campaign core: one execution discipline shared by every
 * scenario *mode* (batch sim, request-level serving, NN inference —
 * and whatever comes next).
 *
 * A campaign is a grid of independent cells addressed by a global
 * index. The core owns everything mode-agnostic about running one:
 *
 *  - thread-pool fan-out over the index space (forEachTask), with one
 *    atomic work queue, stable worker indices, and propagation of the
 *    first worker exception to the caller;
 *  - `i % n` sharding of the global index space (RunOptions);
 *  - one grow-only ScratchArena per worker, so every device a worker
 *    builds reuses the same functional-path buffers;
 *  - precomputed-index result ordering: records are stored by task
 *    index, so report order never depends on scheduling;
 *  - cache-hit accounting and wall-clock measurement, with
 *    `--deterministic` zeroing of the only nondeterministic fields.
 *
 * Modes stay thin clients: they expand their task grid, provide a
 * cell function (compute one record, consulting their JsonlCache),
 * and render reports. The discipline — and therefore byte-identity
 * of sharded+cached campaigns vs cold runs — cannot diverge between
 * modes, because there is only one implementation of it.
 */

#ifndef PLUTO_CAMPAIGN_RUNNER_HH
#define PLUTO_CAMPAIGN_RUNNER_HH

#include <atomic>
#include <chrono>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "campaign/cache.hh"
#include "common/arena.hh"
#include "common/types.hh"
#include "obs/registry.hh"
#include "obs/trace.hh"

namespace pluto::campaign
{

/** Execution options shared by every campaign mode. */
struct RunOptions
{
    /** Worker threads; 0 = hardware concurrency. */
    u32 threads = 0;
    /** This process executes cells whose global index i satisfies
     *  i % shardCount == shardIndex. */
    u32 shardIndex = 0;
    u32 shardCount = 1;
    /** Result-cache directory; empty disables caching. */
    std::string cacheDir;
    /** Cache file encoding under cacheDir (--cache-format). */
    CacheFormat cacheFormat = CacheFormat::Jsonl;
    /** Zero all host wall-clock fields in the report. */
    bool deterministic = false;

    /** @return empty string, or why the options are invalid. */
    std::string validate() const;

    /** @return true when global cell index `g` is in this shard. */
    bool inShard(u64 g) const
    {
        return g % shardCount == shardIndex;
    }
};

/** Mode-agnostic accounting of one campaign execution. */
struct Stats
{
    /** Host wall-clock of the whole campaign, milliseconds (0 under
     *  deterministic mode). */
    double wallMs = 0.0;
    /** Cells replayed from a cache / computed fresh. */
    u64 cacheHits = 0;
    u64 cacheMisses = 0;
};

/** Milliseconds elapsed since `t0` on the host clock. */
double msSince(const std::chrono::steady_clock::time_point &t0);

/** Effective worker count forEachTask will use for `count` tasks. */
u32 resolveThreads(std::size_t count, u32 threads);

/**
 * Execute `count` indexed tasks across `threads` worker threads
 * (0 = hardware concurrency, clamped to the task count) pulling
 * indices from one atomic queue. `fn` receives the task index and
 * the worker index in [0, resolveThreads(count, threads)), so
 * workers can own per-thread state (e.g. a ScratchArena). If a
 * worker throws, the remaining queue is drained without running
 * further tasks, all workers are joined, and the first exception is
 * rethrown on the calling thread.
 */
void forEachTask(std::size_t count, u32 threads,
                 const std::function<void(std::size_t, u32)> &fn);

/**
 * The one campaign loop. Fills `records[i]` for every task index by
 * calling `cell(i, records[i], arena)` — which returns true when the
 * record was replayed from a cache — and reports progress through
 * `progress` (serialized; may be empty). `opt` must already
 * validate(); records are resized to `count`.
 *
 * Determinism contract: `cell` must compute records as a pure
 * function of the task (the arena never changes simulated results),
 * so records are bit-identical across thread counts and schedules.
 */
template <typename Record, typename Cell>
Stats
runCampaign(std::size_t count, const RunOptions &opt,
            std::vector<Record> &records, const Cell &cell,
            const std::function<void(const Record &, u64 done,
                                     u64 total)> &progress = nullptr)
{
    records.clear();
    records.resize(count);

    const auto t0 = std::chrono::steady_clock::now();
    std::atomic<u64> done{0};
    std::atomic<u64> hits{0};
    std::mutex progress_mu;

    std::vector<ScratchArena> arenas(
        resolveThreads(count, opt.threads));

    forEachTask(count, opt.threads, [&](std::size_t i, u32 worker) {
        Record &rec = records[i];
        auto *tr = obs::tracer();
        const double span0 = tr ? tr->nowNs() : 0.0;
        const bool hit = cell(i, rec, arenas[worker]);
        if (tr)
            tr->hostSpan("cell", span0, tr->nowNs(),
                         {obs::argNum("cell", static_cast<double>(i)),
                          obs::argNum("cache_hit", hit ? 1.0 : 0.0)});
        if (auto *sh = obs::shard()) {
            sh->inc("campaign/cells");
            sh->inc(hit ? "campaign/cache/hits"
                        : "campaign/cache/misses");
        }
        if (hit)
            hits.fetch_add(1, std::memory_order_relaxed);
        const u64 n = done.fetch_add(1) + 1;
        if (progress) {
            std::lock_guard<std::mutex> lock(progress_mu);
            progress(rec, n, count);
        }
    });

    Stats stats;
    stats.cacheHits = hits.load();
    stats.cacheMisses = count - stats.cacheHits;
    stats.wallMs = opt.deterministic ? 0.0 : msSince(t0);
    // forEachTask rebound this thread to the root shard, so the
    // phase-level wall lands there. Under --deterministic the phase
    // wall is zeroed like every other host-time field, so --metrics-out
    // files byte-compare across reruns and memo modes.
    if (auto *sh = obs::shard())
        sh->add("campaign/phase/run_ms",
                opt.deterministic ? 0.0 : msSince(t0));
    return stats;
}

} // namespace pluto::campaign

#endif // PLUTO_CAMPAIGN_RUNNER_HH
