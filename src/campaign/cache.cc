/**
 * @file
 * JSONL cache file engine (see cache.hh): everything about the
 * on-disk format that does not depend on the outcome type.
 */

#include "campaign/cache.hh"

#include <filesystem>
#include <fstream>

namespace pluto::campaign::detail
{

namespace
{

/** @return the version-header line announcing `kind` entries. */
std::string
headerLine(const std::string &kind)
{
    return "{\"cacheFormat\":" + std::to_string(kCacheFormat) +
           ",\"kind\":\"" + kind + "\"}\n";
}

} // namespace

std::string
loadJsonlCache(const std::string &path, u64 &corrupt,
               const std::function<bool(const std::string &key,
                                        const JsonValue &obj)> &onEntry)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return {}; // no cache yet
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        std::string err;
        const auto v = JsonValue::parse(line, err);
        if (!v || !v->isObject()) {
            ++corrupt;
            continue;
        }
        // Version headers may appear anywhere: concurrent shard
        // processes that both created the file each wrote one.
        if (const JsonValue *format = v->find("cacheFormat")) {
            if (!format->isNumber()) {
                ++corrupt;
                continue;
            }
            const double f = format->asNumber();
            if (f > static_cast<double>(kCacheFormat))
                return "cache file '" + path +
                       "' uses cacheFormat " +
                       std::to_string(static_cast<u64>(f)) +
                       " but this build reads formats <= " +
                       std::to_string(kCacheFormat) +
                       "; delete the file or upgrade";
            continue; // current or older header: skip
        }
        const JsonValue *key = v->find("key");
        if (!key || !key->isString() || !onEntry(key->asString(), *v))
            ++corrupt;
    }
    return {};
}

std::string
appendJsonlLine(const std::string &dir, const std::string &path,
                const std::string &kind, const std::string &line)
{
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec)
        return "cannot create cache directory '" + dir +
               "': " + ec.message();
    // New or empty file: lead with the version header. Two processes
    // racing here may both write one; the loader skips headers
    // wherever they appear.
    const auto size = std::filesystem::file_size(path, ec);
    const bool fresh = ec || size == 0;
    std::ofstream out(path, std::ios::binary | std::ios::app);
    if (!out)
        return "cannot open cache file '" + path + "' for append";
    if (fresh) {
        const std::string header = headerLine(kind);
        out.write(header.data(),
                  static_cast<std::streamsize>(header.size()));
    }
    out.write(line.data(), static_cast<std::streamsize>(line.size()));
    out.flush();
    if (!out)
        return "append to '" + path + "' failed";
    return {};
}

} // namespace pluto::campaign::detail
