/**
 * @file
 * Cache file engines (see cache.hh): everything about the on-disk
 * JSONL and binary formats that does not depend on the outcome type.
 */

#include "campaign/cache.hh"

#include <filesystem>
#include <fstream>
#include <iterator>

namespace pluto::campaign
{

const char *
cacheFormatName(CacheFormat f)
{
    return f == CacheFormat::Binary ? "binary" : "jsonl";
}

bool
parseCacheFormat(const std::string &s, CacheFormat &out)
{
    if (s == "jsonl")
        out = CacheFormat::Jsonl;
    else if (s == "binary")
        out = CacheFormat::Binary;
    else
        return false;
    return true;
}

} // namespace pluto::campaign

namespace pluto::campaign::detail
{

namespace
{

/** @return the version-header line announcing `kind` entries. */
std::string
headerLine(const std::string &kind)
{
    return "{\"cacheFormat\":" + std::to_string(kCacheFormat) +
           ",\"kind\":\"" + kind + "\"}\n";
}

/**
 * @return the binary header line. Still one JSON line: a JSONL
 * reader (this build or an older one) that opens a binary file sees
 * a higher cacheFormat and fails loudly instead of recomputing.
 */
std::string
binaryHeaderLine(const std::string &kind)
{
    return "{\"cacheFormat\":" + std::to_string(kBinaryCacheFormat) +
           ",\"kind\":\"" + kind + "\",\"encoding\":\"binary\"}\n";
}

/** FNV-1a 32-bit, the per-record checksum of the binary format. */
u32
fnv1a32(const char *p, std::size_t n)
{
    u32 h = 2166136261u;
    for (std::size_t i = 0; i < n; ++i) {
        h ^= static_cast<u8>(p[i]);
        h *= 16777619u;
    }
    return h;
}

} // namespace

std::string
loadJsonlCache(const std::string &path, u64 &corrupt,
               const std::function<bool(const std::string &key,
                                        const JsonValue &obj)> &onEntry)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return {}; // no cache yet
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        std::string err;
        const auto v = JsonValue::parse(line, err);
        if (!v || !v->isObject()) {
            ++corrupt;
            continue;
        }
        // Version headers may appear anywhere: concurrent shard
        // processes that both created the file each wrote one.
        if (const JsonValue *format = v->find("cacheFormat")) {
            if (!format->isNumber()) {
                ++corrupt;
                continue;
            }
            const JsonValue *enc = v->find("encoding");
            if (enc && enc->isString() &&
                enc->asString() == "binary")
                return "cache file '" + path +
                       "' is a binary cache; rerun with "
                       "--cache-format binary (or delete it to "
                       "recompute as jsonl)";
            const double f = format->asNumber();
            if (f > static_cast<double>(kCacheFormat))
                return "cache file '" + path +
                       "' uses cacheFormat " +
                       std::to_string(static_cast<u64>(f)) +
                       " but this build reads formats <= " +
                       std::to_string(kCacheFormat) +
                       "; delete the file or upgrade";
            continue; // current or older header: skip
        }
        const JsonValue *key = v->find("key");
        if (!key || !key->isString() || !onEntry(key->asString(), *v))
            ++corrupt;
    }
    return {};
}

std::string
appendJsonlLine(const std::string &dir, const std::string &path,
                const std::string &kind, const std::string &line)
{
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec)
        return "cannot create cache directory '" + dir +
               "': " + ec.message();
    // New or empty file: lead with the version header. Two processes
    // racing here may both write one; the loader skips headers
    // wherever they appear.
    const auto size = std::filesystem::file_size(path, ec);
    const bool fresh = ec || size == 0;
    std::ofstream out(path, std::ios::binary | std::ios::app);
    if (!out)
        return "cannot open cache file '" + path + "' for append";
    if (fresh) {
        const std::string header = headerLine(kind);
        out.write(header.data(),
                  static_cast<std::streamsize>(header.size()));
    }
    out.write(line.data(), static_cast<std::streamsize>(line.size()));
    out.flush();
    if (!out)
        return "append to '" + path + "' failed";
    return {};
}

std::string
loadBinaryCache(const std::string &path, const std::string &kind,
                u64 &corrupt,
                const std::function<bool(const std::string &key,
                                         BinReader &body)> &onEntry)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return {}; // no cache yet
    std::string data((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    if (data.empty())
        return {};

    const std::string header = binaryHeaderLine(kind);
    if (data.compare(0, header.size(), header) != 0) {
        // Classify the foreign file for a message naming the fix.
        const auto nl = data.find('\n');
        const std::string first =
            data.substr(0, nl == std::string::npos ? data.size() : nl);
        std::string perr;
        const auto v = JsonValue::parse(first, perr);
        if (v && v->isObject()) {
            if (const JsonValue *f = v->find("cacheFormat")) {
                if (f->isNumber() &&
                    f->asNumber() >
                        static_cast<double>(kBinaryCacheFormat))
                    return "cache file '" + path +
                           "' uses cacheFormat " +
                           std::to_string(
                               static_cast<u64>(f->asNumber())) +
                           " but this build reads formats <= " +
                           std::to_string(kBinaryCacheFormat) +
                           "; delete the file or upgrade";
            }
        }
        return "cache file '" + path +
               "' is not a binary cache; rerun with "
               "--cache-format jsonl (or delete it to recompute "
               "as binary)";
    }

    std::size_t pos = header.size();
    while (pos < data.size()) {
        // Racing creators may each have written a header; the line
        // is deterministic, so skip exact duplicates at record
        // boundaries.
        if (data.compare(pos, header.size(), header) == 0) {
            pos += header.size();
            continue;
        }
        if (data.size() - pos < 8) {
            ++corrupt; // torn tail: frame shorter than its preamble
            break;
        }
        u32 len, sum;
        std::memcpy(&len, data.data() + pos, 4);
        std::memcpy(&sum, data.data() + pos + 4, 4);
        if (data.size() - pos - 8 < len) {
            ++corrupt; // torn tail: record body cut short
            break;
        }
        const char *payload = data.data() + pos + 8;
        if (fnv1a32(payload, len) != sum) {
            // Framing can't be trusted past a bad checksum; with
            // whole-record appends this is a torn tail, so stop.
            ++corrupt;
            break;
        }
        pos += 8 + static_cast<std::size_t>(len);
        BinReader rec(std::string_view(payload, len));
        std::string key;
        if (!rec.getString(key) || !onEntry(key, rec))
            ++corrupt;
    }
    return {};
}

std::string
appendBinaryRecord(const std::string &dir, const std::string &path,
                   const std::string &kind, const std::string &key,
                   const std::string &body)
{
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec)
        return "cannot create cache directory '" + dir +
               "': " + ec.message();
    const auto size = std::filesystem::file_size(path, ec);
    const bool fresh = ec || size == 0;

    BinWriter payload;
    payload.putString(key);
    std::string record = payload.bytes() + body;
    const u32 len = static_cast<u32>(record.size());
    const u32 sum = fnv1a32(record.data(), record.size());
    std::string blob;
    if (fresh)
        blob = binaryHeaderLine(kind);
    BinWriter preamble;
    preamble.putU32(len);
    preamble.putU32(sum);
    blob += preamble.bytes() + record;

    // One write() for header + frame keeps concurrent shard appends
    // whole, mirroring the JSONL whole-line discipline.
    std::ofstream out(path, std::ios::binary | std::ios::app);
    if (!out)
        return "cannot open cache file '" + path + "' for append";
    out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
    out.flush();
    if (!out)
        return "append to '" + path + "' failed";
    return {};
}

} // namespace pluto::campaign::detail
