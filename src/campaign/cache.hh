/**
 * @file
 * JsonlCache: the one content-addressed result cache behind every
 * campaign mode.
 *
 * A cache is an append-only JSONL file
 * (`<dir>/<scenario>.<kind>.cache.jsonl`), one outcome object per
 * line, so several shard processes of one campaign may append
 * concurrently (whole-line writes) and an interrupted campaign
 * resumes from whatever lines made it to disk. Loading is last-wins
 * per key and skips corrupt (e.g. torn) lines, counting them.
 * Simulated outcomes are deterministic, so replaying a hit is
 * bit-identical to recomputation; doubles are stored with %.17g and
 * therefore round-trip exactly.
 *
 * Format v2 starts every file with a version-header line
 * (`{"cacheFormat":2,"kind":"sim"}`). Loading accepts legacy
 * unversioned files (every line an entry) and *rejects* files
 * written by a future format with a clear error instead of silently
 * skipping every line as corrupt.
 *
 * Format v3 is the optional binary encoding (--cache-format binary):
 * the same file path, but after an ASCII JSON header line that also
 * carries `"encoding":"binary"`, entries are length-prefixed
 * checksummed records ([u32 len][u32 fnv1a32][key string][codec
 * body]) instead of JSON lines. Records are still append-only whole
 * writes (shard-merge compatible), doubles travel as raw bits (so
 * replay is exactly as bit-identical as JSONL's %.17g), and because
 * the header is a JSON line at the same path, a JSONL-only or older
 * build that opens a binary cache hits the versioned-format error
 * above instead of silently recomputing. Mixing formats in either
 * direction produces a clear error naming the --cache-format value
 * to pass.
 *
 * Modes plug in through a Codec type:
 *
 *   struct Codec {
 *     // Mode namespace: cache filename infix AND content-key prefix,
 *     // so equal descriptors from different modes can never collide
 *     // in a shared --cache-dir.
 *     static constexpr const char *kKind = "...";
 *     // JSON fields of one outcome, starting with ',' (the engine
 *     // writes {"key":"...", then the body, then }\n).
 *     static std::string encodeBody(const Outcome &out);
 *     // Parse one entry object; false = corrupt line.
 *     static bool decode(const JsonValue &obj, Outcome &out);
 *     // Binary twins of the two above (field order is the schema).
 *     static void encodeBinary(const Outcome &out, BinWriter &w);
 *     static bool decodeBinary(BinReader &r, Outcome &out);
 *   };
 */

#ifndef PLUTO_CAMPAIGN_CACHE_HH
#define PLUTO_CAMPAIGN_CACHE_HH

#include <bit>
#include <cstring>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>

#include "common/digest.hh"
#include "common/emit.hh"

namespace pluto::campaign
{

/** On-disk JSONL cache format this build reads and writes. */
constexpr u32 kCacheFormat = 2;

/**
 * On-disk format of the binary encoding. Deliberately above
 * kCacheFormat: a build that predates the binary cache rejects such
 * a file through its ordinary future-format check instead of
 * skipping every record as corrupt and silently recomputing.
 */
constexpr u32 kBinaryCacheFormat = 3;

/** Cache file encoding selected per campaign (--cache-format). */
enum class CacheFormat : u8
{
    Jsonl = 0,
    Binary = 1,
};

/** @return "jsonl" or "binary". */
const char *cacheFormatName(CacheFormat f);

/** Parse a --cache-format value; false = unrecognised. */
bool parseCacheFormat(const std::string &s, CacheFormat &out);

/**
 * Little-endian byte-buffer writer for binary cache bodies. Doubles
 * travel as raw IEEE-754 bits, so every value round-trips exactly.
 */
class BinWriter
{
  public:
    void putU32(u32 v) { putRaw(&v, sizeof(v)); }
    void putU64(u64 v) { putRaw(&v, sizeof(v)); }
    void putF64(double v) { putU64(std::bit_cast<u64>(v)); }
    void putBool(bool v) { buf_.push_back(v ? '\1' : '\0'); }
    void putString(const std::string &s)
    {
        putU32(static_cast<u32>(s.size()));
        buf_.append(s);
    }

    const std::string &bytes() const { return buf_; }

  private:
    void putRaw(const void *p, std::size_t n)
    {
        static_assert(std::endian::native == std::endian::little,
                      "binary cache assumes little-endian storage");
        buf_.append(static_cast<const char *>(p), n);
    }

    std::string buf_;
};

/**
 * Bounds-checked reader over one binary record body. Every getter
 * returns false (and stops advancing) once the record is exhausted,
 * so codecs can chain reads and check once.
 */
class BinReader
{
  public:
    explicit BinReader(std::string_view data) : data_(data) {}

    bool getU32(u32 &v) { return getRaw(&v, sizeof(v)); }
    bool getU64(u64 &v) { return getRaw(&v, sizeof(v)); }
    bool getF64(double &v)
    {
        u64 bits;
        if (!getU64(bits))
            return false;
        v = std::bit_cast<double>(bits);
        return true;
    }
    bool getBool(bool &v)
    {
        if (pos_ >= data_.size())
            return false;
        v = data_[pos_++] != '\0';
        return true;
    }
    bool getString(std::string &s)
    {
        u32 len;
        if (!getU32(len) || data_.size() - pos_ < len)
            return false;
        s.assign(data_.substr(pos_, len));
        pos_ += len;
        return true;
    }

    /** @return true when the whole record was consumed. */
    bool atEnd() const { return pos_ == data_.size(); }

  private:
    bool getRaw(void *p, std::size_t n)
    {
        if (data_.size() - pos_ < n)
            return false;
        std::memcpy(p, data_.data() + pos_, n);
        pos_ += n;
        return true;
    }

    std::string_view data_;
    std::size_t pos_ = 0;
};

namespace detail
{

/**
 * Load one JSONL cache file: handle the version header (legacy
 * unversioned files load as pure entry streams; future formats
 * @return a non-empty error), call `onEntry(key, obj)` per entry
 * line, and count lines that are corrupt or whose `onEntry` returns
 * false in `corrupt`. A missing file is an empty cache.
 */
std::string
loadJsonlCache(const std::string &path, u64 &corrupt,
               const std::function<bool(const std::string &key,
                                        const JsonValue &obj)> &onEntry);

/**
 * Append one whole line, creating the directory and writing the
 * `kind` version header first when the file is new or empty.
 * @return empty string or an error description.
 */
std::string appendJsonlLine(const std::string &dir,
                            const std::string &path,
                            const std::string &kind,
                            const std::string &line);

/**
 * Load one binary (v3) cache file: verify the header, then call
 * `onEntry(key, body)` per checksummed record, counting bad records
 * in `corrupt` (framing damage ends the scan at that point — with
 * whole-record appends that only happens at a torn tail). A missing
 * file is an empty cache; a JSONL or future-format file @return a
 * non-empty error naming the fix.
 */
std::string
loadBinaryCache(const std::string &path, const std::string &kind,
                u64 &corrupt,
                const std::function<bool(const std::string &key,
                                         BinReader &body)> &onEntry);

/**
 * Append one [len][checksum][key][body] record, creating directory
 * and binary header like appendJsonlLine. One whole write per
 * record, so concurrent shard appends do not interleave.
 * @return empty string or an error description.
 */
std::string appendBinaryRecord(const std::string &dir,
                               const std::string &path,
                               const std::string &kind,
                               const std::string &key,
                               const std::string &body);

} // namespace detail

/** Append-only JSONL outcome cache for one scenario and mode. */
template <typename Outcome, typename Codec>
class JsonlCache
{
  public:
    /**
     * Cache for scenario `scenario` under directory `dir` (created
     * if missing on first append), stored in `format`. Both formats
     * share one path per scenario/kind: a cache directory holds one
     * encoding per cell, and opening it with the other --cache-format
     * fails loudly instead of recomputing.
     */
    JsonlCache(std::string dir, const std::string &scenario,
               CacheFormat format = CacheFormat::Jsonl)
        : dir_(std::move(dir)),
          path_(dir_ + "/" + scenario + "." + Codec::kKind +
                ".cache.jsonl"),
          format_(format)
    {
    }

    /**
     * @return the content key of `descriptor`, namespaced by the
     * codec's kind — `sim/` and `serve/` cells with coincidentally
     * equal descriptors hash to different keys.
     */
    static std::string keyFor(const std::string &descriptor)
    {
        return fnv1aHex(std::string(Codec::kKind) + "/" + descriptor);
    }

    /**
     * Load the cache file (missing file = empty cache). @return
     * empty string, or a clear error when the file was written by a
     * future cache format.
     */
    std::string load()
    {
        std::lock_guard<std::mutex> lock(mu_);
        entries_.clear();
        corrupt_ = 0;
        if (format_ == CacheFormat::Binary)
            return detail::loadBinaryCache(
                path_, Codec::kKind, corrupt_,
                [&](const std::string &key, BinReader &body) {
                    Outcome out;
                    if (!Codec::decodeBinary(body, out))
                        return false;
                    entries_[key] = std::move(out); // last wins
                    return true;
                });
        return detail::loadJsonlCache(
            path_, corrupt_,
            [&](const std::string &key, const JsonValue &obj) {
                Outcome out;
                if (!Codec::decode(obj, out))
                    return false;
                entries_[key] = std::move(out); // last line wins
                return true;
            });
    }

    /**
     * Look up `key`. The returned copy (not a reference) keeps the
     * caller safe from concurrent append() map mutations.
     */
    std::optional<Outcome> lookup(const std::string &key) const
    {
        std::lock_guard<std::mutex> lock(mu_);
        const auto it = entries_.find(key);
        if (it == entries_.end())
            return std::nullopt;
        return it->second;
    }

    /**
     * Append one outcome (thread-safe; one whole line per write so
     * concurrent shard appends do not interleave). @return empty
     * string or an error description.
     */
    std::string append(const std::string &key, const Outcome &out)
    {
        std::string err;
        if (format_ == CacheFormat::Binary) {
            BinWriter body;
            Codec::encodeBinary(out, body);
            std::lock_guard<std::mutex> lock(mu_);
            err = detail::appendBinaryRecord(dir_, path_, Codec::kKind,
                                             key, body.bytes());
            if (err.empty())
                entries_[key] = out;
            return err;
        }
        const std::string line =
            "{\"key\":\"" + key + "\"" + Codec::encodeBody(out) +
            "}\n";
        std::lock_guard<std::mutex> lock(mu_);
        err = detail::appendJsonlLine(dir_, path_, Codec::kKind, line);
        if (err.empty())
            entries_[key] = out;
        return err;
    }

    /** @return loaded entry count. */
    std::size_t entries() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return entries_.size();
    }

    /** @return lines skipped as corrupt during load(). */
    u64 corruptLines() const { return corrupt_; }

    /** @return the backing cache file path (shared by formats). */
    const std::string &path() const { return path_; }

    /** @return the encoding this cache reads and writes. */
    CacheFormat format() const { return format_; }

  private:
    std::string dir_;
    std::string path_;
    CacheFormat format_ = CacheFormat::Jsonl;
    /** Guards entries_ (lookup from worker threads vs append). */
    mutable std::mutex mu_;
    std::map<std::string, Outcome> entries_;
    u64 corrupt_ = 0;
};

} // namespace pluto::campaign

#endif // PLUTO_CAMPAIGN_CACHE_HH
