/**
 * @file
 * JsonlCache: the one content-addressed result cache behind every
 * campaign mode.
 *
 * A cache is an append-only JSONL file
 * (`<dir>/<scenario>.<kind>.cache.jsonl`), one outcome object per
 * line, so several shard processes of one campaign may append
 * concurrently (whole-line writes) and an interrupted campaign
 * resumes from whatever lines made it to disk. Loading is last-wins
 * per key and skips corrupt (e.g. torn) lines, counting them.
 * Simulated outcomes are deterministic, so replaying a hit is
 * bit-identical to recomputation; doubles are stored with %.17g and
 * therefore round-trip exactly.
 *
 * Format v2 starts every file with a version-header line
 * (`{"cacheFormat":2,"kind":"sim"}`). Loading accepts legacy
 * unversioned files (every line an entry) and *rejects* files
 * written by a future format with a clear error instead of silently
 * skipping every line as corrupt.
 *
 * Modes plug in through a Codec type:
 *
 *   struct Codec {
 *     // Mode namespace: cache filename infix AND content-key prefix,
 *     // so equal descriptors from different modes can never collide
 *     // in a shared --cache-dir.
 *     static constexpr const char *kKind = "...";
 *     // JSON fields of one outcome, starting with ',' (the engine
 *     // writes {"key":"...", then the body, then }\n).
 *     static std::string encodeBody(const Outcome &out);
 *     // Parse one entry object; false = corrupt line.
 *     static bool decode(const JsonValue &obj, Outcome &out);
 *   };
 */

#ifndef PLUTO_CAMPAIGN_CACHE_HH
#define PLUTO_CAMPAIGN_CACHE_HH

#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>

#include "common/digest.hh"
#include "common/emit.hh"

namespace pluto::campaign
{

/** On-disk JSONL cache format this build reads and writes. */
constexpr u32 kCacheFormat = 2;

namespace detail
{

/**
 * Load one JSONL cache file: handle the version header (legacy
 * unversioned files load as pure entry streams; future formats
 * @return a non-empty error), call `onEntry(key, obj)` per entry
 * line, and count lines that are corrupt or whose `onEntry` returns
 * false in `corrupt`. A missing file is an empty cache.
 */
std::string
loadJsonlCache(const std::string &path, u64 &corrupt,
               const std::function<bool(const std::string &key,
                                        const JsonValue &obj)> &onEntry);

/**
 * Append one whole line, creating the directory and writing the
 * `kind` version header first when the file is new or empty.
 * @return empty string or an error description.
 */
std::string appendJsonlLine(const std::string &dir,
                            const std::string &path,
                            const std::string &kind,
                            const std::string &line);

} // namespace detail

/** Append-only JSONL outcome cache for one scenario and mode. */
template <typename Outcome, typename Codec>
class JsonlCache
{
  public:
    /**
     * Cache for scenario `scenario` under directory `dir` (created
     * if missing on first append).
     */
    JsonlCache(std::string dir, const std::string &scenario)
        : dir_(std::move(dir)),
          path_(dir_ + "/" + scenario + "." + Codec::kKind +
                ".cache.jsonl")
    {
    }

    /**
     * @return the content key of `descriptor`, namespaced by the
     * codec's kind — `sim/` and `serve/` cells with coincidentally
     * equal descriptors hash to different keys.
     */
    static std::string keyFor(const std::string &descriptor)
    {
        return fnv1aHex(std::string(Codec::kKind) + "/" + descriptor);
    }

    /**
     * Load the cache file (missing file = empty cache). @return
     * empty string, or a clear error when the file was written by a
     * future cache format.
     */
    std::string load()
    {
        std::lock_guard<std::mutex> lock(mu_);
        entries_.clear();
        corrupt_ = 0;
        return detail::loadJsonlCache(
            path_, corrupt_,
            [&](const std::string &key, const JsonValue &obj) {
                Outcome out;
                if (!Codec::decode(obj, out))
                    return false;
                entries_[key] = std::move(out); // last line wins
                return true;
            });
    }

    /**
     * Look up `key`. The returned copy (not a reference) keeps the
     * caller safe from concurrent append() map mutations.
     */
    std::optional<Outcome> lookup(const std::string &key) const
    {
        std::lock_guard<std::mutex> lock(mu_);
        const auto it = entries_.find(key);
        if (it == entries_.end())
            return std::nullopt;
        return it->second;
    }

    /**
     * Append one outcome (thread-safe; one whole line per write so
     * concurrent shard appends do not interleave). @return empty
     * string or an error description.
     */
    std::string append(const std::string &key, const Outcome &out)
    {
        const std::string line =
            "{\"key\":\"" + key + "\"" + Codec::encodeBody(out) +
            "}\n";
        std::lock_guard<std::mutex> lock(mu_);
        const std::string err = detail::appendJsonlLine(
            dir_, path_, Codec::kKind, line);
        if (err.empty())
            entries_[key] = out;
        return err;
    }

    /** @return loaded entry count. */
    std::size_t entries() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return entries_.size();
    }

    /** @return lines skipped as corrupt during load(). */
    u64 corruptLines() const { return corrupt_; }

    /** @return the backing JSONL path. */
    const std::string &path() const { return path_; }

  private:
    std::string dir_;
    std::string path_;
    /** Guards entries_ (lookup from worker threads vs append). */
    mutable std::mutex mu_;
    std::map<std::string, Outcome> entries_;
    u64 corrupt_ = 0;
};

} // namespace pluto::campaign

#endif // PLUTO_CAMPAIGN_CACHE_HH
