/**
 * @file
 * Campaign CLI driver (see cli.hh).
 */

#include "campaign/cli.hh"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "common/cpuid.hh"
#include "common/emit.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "obs/registry.hh"
#include "obs/trace.hh"
#include "workloads/workload.hh"

namespace pluto::campaign
{

namespace
{

/** The full --help text, assembled from the mode registry. */
void
printHelp(const std::vector<Mode> &modes)
{
    std::printf(
        "usage: pluto_sim [mode] [options] SCENARIO.ini\n"
        "\n"
        "options (all modes):\n"
        "  --threads N     worker threads (default: hardware "
        "concurrency)\n"
        "  --out DIR       override the scenario's out_dir\n"
        "  --shard I/N     run only shard I of N (0-based; outputs\n"
        "                  suffixed .shardIofN; combine shards via\n"
        "                  --cache-dir and a final unsharded pass)\n"
        "  --cache-dir DIR replay/append a result cache\n"
        "  --cache-format F  cache file encoding: jsonl (default,\n"
        "                  readable, merge-friendly) or binary\n"
        "                  (length-prefixed records, faster replay);\n"
        "                  a cache dir holds one encoding per cell\n"
        "  --deterministic zero wall-clock fields in outputs\n"
        "  --quiet         suppress per-cell progress lines\n"
        "  --trace FILE    write a Chrome trace-event JSON (host +\n"
        "                  virtual-time tracks; open in Perfetto)\n"
        "  --metrics-out FILE  write the hierarchical counter tree\n"
        "                  as JSON after the campaign\n"
        "  --tail-report FILE  service mode: write the tail-blame\n"
        "                  JSON (per-tenant/class phase breakdown\n"
        "                  above the [service] tail_quantile)\n"
        "  --timeseries FILE  service mode: write the virtual-time\n"
        "                  series CSV (one row per timeseries_ms\n"
        "                  window per cell)\n"
        "  --log-level L   stderr threshold: info, warn (default),\n"
        "                  error (alias: quiet)\n"
        "  --list          list registered workload names and exit\n"
        "  --list-workloads  print the workload registry table and "
        "exit\n"
        "  --simd-tier     print the active SIMD dispatch tier\n"
        "                  (scalar/ssse3/avx2; see PLUTO_NO_SIMD) "
        "and exit\n"
        "  --help          this text\n"
        "\n"
        "modes:\n");
    for (const auto &m : modes) {
        std::printf("  %-15s %s: %s\n",
                    m.flag.empty() ? "(default)" : m.flag.c_str(),
                    m.name.c_str(), m.summary.c_str());
        for (const auto &note : m.notes)
            std::printf("                  %s\n", note.c_str());
    }
}

/** Short usage pointer for error paths (stderr). */
void
usageError(const char *fmt, const std::string &what)
{
    std::fprintf(stderr, fmt, what.c_str());
    std::fprintf(stderr, "usage: pluto_sim [mode] [options] "
                         "SCENARIO.ini  (--help for details)\n");
}

/** The --list-workloads registry table. */
void
printWorkloadTable()
{
    AsciiTable table({"workload", "default elems (ddr4)",
                      "default elems (3ds)", "cpu ns/elem",
                      "gpu ns/elem", "fpga ns/elem"});
    for (const auto &name : workloads::workloadNames()) {
        const auto w = workloads::createWorkload(name);
        if (!w)
            continue;
        const auto rates = w->rates();
        table.addRow(
            {name,
             std::to_string(
                 w->defaultElements(dram::MemoryKind::Ddr4)),
             std::to_string(
                 w->defaultElements(dram::MemoryKind::Hmc3ds)),
             fmtSig(rates.cpu), fmtSig(rates.gpu),
             fmtSig(rates.fpga)});
    }
    std::printf("%s", table.render().c_str());
}

} // namespace

int
finishCampaign(
    const CliInvocation &inv, const Stats &stats, bool allVerified,
    const std::function<std::string(const std::string &suffix,
                                    std::vector<std::string> &written)>
        &write)
{
    std::printf("wall       %.0f ms total\n", stats.wallMs);
    if (!inv.opt.cacheDir.empty()) {
        const u64 total = stats.cacheHits + stats.cacheMisses;
        std::printf("cache_hits=%llu cache_misses=%llu "
                    "hit_rate=%.1f%%\n",
                    static_cast<unsigned long long>(stats.cacheHits),
                    static_cast<unsigned long long>(stats.cacheMisses),
                    total ? 100.0 * stats.cacheHits / total : 0.0);
    }

    std::string suffix;
    if (inv.sharded)
        suffix = ".shard" + std::to_string(inv.opt.shardIndex) +
                 "of" + std::to_string(inv.opt.shardCount);
    std::vector<std::string> written;
    const auto w0 = std::chrono::steady_clock::now();
    const std::string werr = write(suffix, written);
    if (auto *sh = obs::shard())
        sh->add("campaign/phase/write_ms",
                inv.opt.deterministic ? 0.0 : msSince(w0));
    if (!werr.empty()) {
        std::fprintf(stderr, "output error: %s\n", werr.c_str());
        return 1;
    }
    for (const auto &p : written)
        std::printf("wrote      %s\n", p.c_str());

    return allVerified ? 0 : 2;
}

int
cliMain(int argc, char **argv, const std::vector<Mode> &modes)
{
    CliInvocation inv;
    std::string outDir;
    const Mode *mode = nullptr; // default resolved after parsing

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                usageError("pluto_sim: %s needs a value\n", arg);
                std::exit(1);
            }
            return argv[++i];
        };
        const auto modeFor = [&](const std::string &flag) {
            for (const auto &m : modes)
                if (!m.flag.empty() && m.flag == flag)
                    return &m;
            return static_cast<const Mode *>(nullptr);
        };
        if (arg == "--list") {
            for (const auto &name : workloads::workloadNames())
                std::printf("%s\n", name.c_str());
            return 0;
        } else if (arg == "--list-workloads") {
            printWorkloadTable();
            return 0;
        } else if (arg == "--threads") {
            inv.opt.threads = static_cast<u32>(std::atoi(next()));
        } else if (arg == "--out") {
            outDir = next();
        } else if (arg == "--shard") {
            const std::string spec = next();
            unsigned idx = 0, cnt = 0;
            char trail = 0;
            if (std::sscanf(spec.c_str(), "%u/%u%c", &idx, &cnt,
                            &trail) != 2) {
                usageError("pluto_sim: --shard wants I/N (e.g. 0/3), "
                           "got '%s'\n",
                           spec);
                return 1;
            }
            inv.opt.shardIndex = idx;
            inv.opt.shardCount = cnt;
            inv.sharded = true;
        } else if (arg == "--cache-dir") {
            inv.opt.cacheDir = next();
        } else if (arg == "--cache-format") {
            const std::string fmt = next();
            if (!parseCacheFormat(fmt, inv.opt.cacheFormat)) {
                usageError("pluto_sim: --cache-format wants jsonl or "
                           "binary, got '%s'\n",
                           fmt);
                return 1;
            }
        } else if (arg == "--simd-tier") {
            std::printf("%s\n", simd::tierName(simd::tier()));
            return 0;
        } else if (arg == "--deterministic") {
            inv.opt.deterministic = true;
        } else if (arg == "--quiet") {
            inv.quiet = true;
        } else if (arg == "--trace") {
            inv.tracePath = next();
        } else if (arg == "--metrics-out") {
            inv.metricsPath = next();
        } else if (arg == "--tail-report") {
            inv.tailReportPath = next();
        } else if (arg == "--timeseries") {
            inv.timeseriesPath = next();
        } else if (arg == "--log-level") {
            const std::string level = next();
            LogLevel threshold;
            if (!parseLogLevel(level, threshold)) {
                usageError("pluto_sim: --log-level wants info, warn "
                           "or error, got '%s'\n",
                           level);
                return 1;
            }
            setLogThreshold(threshold);
        } else if (arg == "--help") {
            printHelp(modes);
            return 0;
        } else if (const Mode *m = modeFor(arg)) {
            if (mode && mode != m) {
                usageError("pluto_sim: mode flag '%s' conflicts with "
                           "an earlier mode flag\n",
                           arg);
                return 1;
            }
            mode = m;
        } else if (!arg.empty() && arg.front() == '-') {
            usageError("pluto_sim: unknown flag '%s'\n", arg);
            return 1;
        } else if (inv.scenarioPath.empty()) {
            inv.scenarioPath = arg;
        } else {
            usageError("pluto_sim: unexpected extra argument '%s'\n",
                       arg);
            return 1;
        }
    }
    if (inv.scenarioPath.empty()) {
        usageError("pluto_sim: %s\n", "missing scenario file");
        return 1;
    }
    const std::string opterr = inv.opt.validate();
    if (!opterr.empty()) {
        usageError("pluto_sim: --shard: %s\n", opterr);
        return 1;
    }
    if (!mode) {
        for (const auto &m : modes)
            if (m.flag.empty())
                mode = &m;
    }
    if (!mode) {
        std::fprintf(stderr, "pluto_sim: no default mode registered\n");
        return 1;
    }

    std::string err;
    auto cfg = sim::SimConfig::load(inv.scenarioPath, err);
    if (!cfg) {
        std::fprintf(stderr, "%s: %s\n", inv.scenarioPath.c_str(),
                     err.c_str());
        return 1;
    }
    if (!outDir.empty())
        cfg->outDir = outDir;

    std::printf("scenario   %s (%s)\n", cfg->name.c_str(),
                inv.scenarioPath.c_str());
    std::printf("runs       %s\n", mode->banner(*cfg).c_str());
    if (inv.sharded)
        std::printf("shard      %u/%u\n", inv.opt.shardIndex,
                    inv.opt.shardCount);

    // Telemetry is side-band: counters and traces never feed back
    // into simulated results, so enabling either leaves the mode's
    // --deterministic outputs byte-identical.
    auto &reg = obs::Registry::get();
    const bool metricsOn =
        !inv.metricsPath.empty() || !inv.tracePath.empty();
    if (metricsOn) {
        reg.reset();
        reg.enable(true);
    }
    std::unique_ptr<obs::Tracer> tracer;
    if (!inv.tracePath.empty()) {
        tracer = std::make_unique<obs::Tracer>();
        obs::Tracer::install(tracer.get());
        tracer->setThreadName("main");
    }

    int rc = mode->run(*cfg, inv);

    if (tracer) {
        obs::Tracer::install(nullptr);
        if (tracer->droppedCount() > 0)
            warn("trace: %llu events dropped by the per-thread "
                 "buffer cap",
                 static_cast<unsigned long long>(
                     tracer->droppedCount()));
        const std::string terr = tracer->writeJson(inv.tracePath);
        if (!terr.empty()) {
            std::fprintf(stderr, "trace error: %s\n", terr.c_str());
            if (rc == 0)
                rc = 1;
        } else {
            std::printf("wrote      %s (%llu events)\n",
                        inv.tracePath.c_str(),
                        static_cast<unsigned long long>(
                            tracer->eventCount()));
        }
    }
    if (!inv.metricsPath.empty()) {
        const std::string json = reg.renderJson(
            {{"scenario", obs::argStr("", cfg->name).json},
             {"scenario_file",
              obs::argStr("", inv.scenarioPath).json},
             {"mode", obs::argStr("", mode->name).json},
             {"deterministic",
              inv.opt.deterministic ? "true" : "false"}});
        const std::string merr =
            writeTextFile(inv.metricsPath, json);
        if (!merr.empty()) {
            std::fprintf(stderr, "metrics error: %s\n", merr.c_str());
            if (rc == 0)
                rc = 1;
        } else {
            std::printf("wrote      %s\n", inv.metricsPath.c_str());
        }
    }
    if (metricsOn) {
        reg.enable(false);
        reg.reset();
    }
    return rc;
}

} // namespace pluto::campaign
