#include "dram/geometry.hh"

namespace pluto::dram
{

Geometry
Geometry::ddr4()
{
    Geometry g;
    g.banks = 16;
    g.subarraysPerBank = 32;
    g.rowsPerSubarray = 512;
    g.rowBytes = 8192;
    g.defaultSalp = 16;
    return g;
}

Geometry
Geometry::hmc3ds()
{
    Geometry g;
    // 512 subarrays operate in parallel with 256 B rows so the data
    // volume per sweep step matches DDR4: 512 x 256 B = 16 x 8 kB
    // = 128 kB (Section 7).
    g.banks = 32;
    g.subarraysPerBank = 64;
    g.rowsPerSubarray = 512;
    g.rowBytes = 256;
    g.defaultSalp = 512;
    return g;
}

Geometry
Geometry::forKind(MemoryKind kind)
{
    return kind == MemoryKind::Ddr4 ? ddr4() : hmc3ds();
}

Geometry
Geometry::tiny()
{
    Geometry g;
    g.banks = 2;
    g.subarraysPerBank = 8;
    g.rowsPerSubarray = 64;
    g.rowBytes = 32;
    g.defaultSalp = 2;
    return g;
}

} // namespace pluto::dram
