/**
 * @file
 * DRAM organization parameters (Figure 1 of the paper): a module is a
 * set of banks, each bank a set of subarrays, each subarray a 2-D
 * array of rows x row-size bytes.
 */

#ifndef PLUTO_DRAM_GEOMETRY_HH
#define PLUTO_DRAM_GEOMETRY_HH

#include "common/types.hh"
#include "dram/timing.hh"

namespace pluto::dram
{

/** Static shape of a DRAM module. */
struct Geometry
{
    /** Banks per module (DDR4: 4 bank groups x 4 banks, Table 3). */
    u32 banks = 16;
    /** Subarrays per bank. */
    u32 subarraysPerBank = 32;
    /** Rows per subarray (512 per Table 3). */
    u32 rowsPerSubarray = 512;
    /** Bytes per row (DDR4: 8 kB; 3DS: 256 B; Section 7). */
    u32 rowBytes = 8192;

    /** Default subarray-level parallelism for pLUTo (Section 7). */
    u32 defaultSalp = 16;

    /** @return bits per row. */
    u64 rowBits() const { return static_cast<u64>(rowBytes) * 8; }

    /** @return total capacity in bytes. */
    u64
    capacityBytes() const
    {
        return static_cast<u64>(banks) * subarraysPerBank *
               rowsPerSubarray * rowBytes;
    }

    /** DDR4 preset: 8 kB rows, 16-subarray parallelism. */
    static Geometry ddr4();
    /** 3DS preset: 256 B rows, 512-subarray parallelism. */
    static Geometry hmc3ds();
    /** Preset lookup by kind. */
    static Geometry forKind(MemoryKind kind);
    /**
     * Small geometry for unit tests (fast functional checks that do
     * not depend on the paper's capacities).
     */
    static Geometry tiny();
};

} // namespace pluto::dram

#endif // PLUTO_DRAM_GEOMETRY_HH
