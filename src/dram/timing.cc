#include "dram/timing.hh"

#include "common/logging.hh"

namespace pluto::dram
{

const char *
memoryKindName(MemoryKind kind)
{
    switch (kind) {
      case MemoryKind::Ddr4:
        return "DDR4";
      case MemoryKind::Hmc3ds:
        return "3DS";
    }
    panic("bad MemoryKind");
}

TimingParams
TimingParams::ddr4_2400()
{
    TimingParams t;
    t.name = "DDR4-2400 17-17-17";
    t.kind = MemoryKind::Ddr4;
    t.tCK = 0.833;
    t.tRCD = 14.16;
    t.tRP = 14.16;
    t.tRAS = 32.0;
    t.tCL = 14.16;
    t.tFAW = 13.328;
    t.lisaRbm = 3.0 * t.tRCD;
    t.tREFI = 7800.0;
    t.tRFC = 350.0;
    return t;
}

TimingParams
TimingParams::hmc3ds()
{
    TimingParams t;
    t.name = "HMC 3D-stacked";
    t.kind = MemoryKind::Hmc3ds;
    t.tCK = 0.8;
    // ~38% faster activations than DDR4 (Section 8.2's observed
    // 3DS-vs-DDR4 speedup stems from faster row activation).
    t.tRCD = 10.25;
    t.tRP = 10.25;
    t.tRAS = 22.0;
    t.tCL = 10.25;
    t.tFAW = 13.328;
    t.lisaRbm = 3.0 * t.tRCD;
    t.tREFI = 7800.0;
    t.tRFC = 260.0;
    return t;
}

TimingParams
TimingParams::forKind(MemoryKind kind)
{
    return kind == MemoryKind::Ddr4 ? ddr4_2400() : hmc3ds();
}

EnergyParams
EnergyParams::ddr4()
{
    EnergyParams e;
    // Magnitudes anchored to CACTI-7-class DDR4 models: activating and
    // restoring an 8 kB row costs a few nJ; precharge is cheaper; a
    // LISA hop moves a full row buffer between subarrays.
    e.eAct = 2600.0;
    e.ePre = 700.0;
    e.eLisa = 1900.0;
    e.eIoPerByte = 6.0;
    e.gmcActDiscount = 0.77;
    e.backgroundPower = 9.0;
    return e;
}

EnergyParams
EnergyParams::hmc3ds()
{
    EnergyParams e;
    // 256 B rows move ~32x less charge per activation than DDR4's
    // 8 kB rows; TSV I/O is cheaper per byte than board-level DDR.
    e.eAct = 110.0;
    e.ePre = 30.0;
    e.eLisa = 80.0;
    e.eIoPerByte = 3.0;
    e.gmcActDiscount = 0.77;
    e.backgroundPower = 115.0;
    return e;
}

EnergyParams
EnergyParams::forKind(MemoryKind kind)
{
    return kind == MemoryKind::Ddr4 ? ddr4() : hmc3ds();
}

} // namespace pluto::dram
