#include "dram/address.hh"

#include <cstdio>

namespace pluto::dram
{

std::string
RowAddress::str() const
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "b%u.s%u.r%u", bank, subarray, row);
    return buf;
}

std::string
SubarrayAddress::str() const
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "b%u.s%u", bank, subarray);
    return buf;
}

} // namespace pluto::dram
