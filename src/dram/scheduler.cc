#include "dram/scheduler.hh"

#include <algorithm>

#include "common/logging.hh"

namespace pluto::dram
{

FawTracker::FawTracker(TimeNs t_faw)
    : tFaw_(t_faw)
{
}

TimeNs
FawTracker::reserve(TimeNs candidate)
{
    if (tFaw_ <= 0.0)
        return candidate;
    TimeNs t = candidate;
    if (count_ == 4) {
        // Full window: delay behind the oldest tracked ACT, then
        // overwrite it in place (it becomes the newest slot).
        t = std::max(t, acts_[head_] + tFaw_);
        acts_[head_] = t;
        head_ = (head_ + 1) & 3;
    } else {
        acts_[(head_ + count_) & 3] = t;
        ++count_;
    }
    return t;
}

TimeNs
FawTracker::reserveBatch(TimeNs candidate, u64 count)
{
    if (count == 0 || tFaw_ <= 0.0)
        return candidate;
    // Chained candidates: ACT i may issue at ACT i-1's slot unless
    // the window forces a delay. The ring makes each step one
    // compare, one max and one store.
    TimeNs last = reserve(candidate);
    for (u64 i = 1; i < count; ++i)
        last = reserve(last);
    return last;
}

void
FawTracker::reset()
{
    head_ = 0;
    count_ = 0;
}

CommandScheduler::CommandScheduler(const TimingParams &timing,
                                   const EnergyParams &energy,
                                   double faw_scale)
    : timing_(timing), energyParams_(energy),
      faw_(timing.tFAW * faw_scale)
{
    if (faw_scale < 0.0 || faw_scale > 1.0)
        fatal("tFAW scale %f out of [0,1]", faw_scale);
}

TimeNs
CommandScheduler::stretched(TimeNs latency) const
{
    return modelRefresh_ ? latency * timing_.refreshStretch() : latency;
}

void
CommandScheduler::record(const char *name, TimeNs start, TimeNs end)
{
    if (traceLimit_ == 0)
        return;
    stats_.inc("trace.events");
    if (trace_.size() < traceLimit_)
        trace_.push_back({name, start, end});
}

void
CommandScheduler::setTraceLimit(std::size_t limit)
{
    traceLimit_ = limit;
    trace_.clear();
    trace_.reserve(std::min<std::size_t>(limit, 4096));
}

void
CommandScheduler::op(const char *stat, TimeNs latency,
                     EnergyPj energy_per_unit, u32 num_acts, u32 parallel)
{
    PLUTO_ASSERT(parallel >= 1);
    TimeNs start = now_;
    if (num_acts > 0) {
        const u64 total_acts =
            static_cast<u64>(num_acts) * static_cast<u64>(parallel);
        start = faw_.reserveBatch(now_, total_acts);
        stats_.add("dram.acts", static_cast<double>(total_acts));
        // tFAW back-pressure: time the window pushed this command past
        // its unconstrained issue point. Absent when unthrottled.
        if (start > now_)
            stats_.add("dram.tfaw_stall.ns", start - now_);
    }
    now_ = start + stretched(latency);
    energy_ += energy_per_unit * parallel;
    stats_.inc(stat);
    stats_.add(std::string(stat) + ".ns", stretched(latency));
    record(stat, start, now_);
}

void
CommandScheduler::sweep(const char *stat, u32 num_rows, TimeNs step_latency,
                        EnergyPj step_energy, u32 parallel,
                        TimeNs tail_latency, EnergyPj tail_energy)
{
    PLUTO_ASSERT(parallel >= 1);
    const TimeNs begin = now_;
    const TimeNs step = stretched(step_latency);
    TimeNs stall = 0.0;
    for (u32 r = 0; r < num_rows; ++r) {
        // All `parallel` subarrays activate their next LUT row in
        // lock-step; each activation reserves a tFAW slot.
        const TimeNs last_act = faw_.reserveBatch(now_, parallel);
        stall += last_act - now_;
        now_ = last_act + step;
    }
    now_ += stretched(tail_latency);
    energy_ += (step_energy * num_rows + tail_energy) * parallel;
    stats_.add("dram.acts",
               static_cast<double>(num_rows) * parallel);
    if (stall > 0.0)
        stats_.add("dram.tfaw_stall.ns", stall);
    stats_.inc(stat);
    stats_.add(std::string(stat) + ".rows",
               static_cast<double>(num_rows));
    record(stat, begin, now_);
}

void
CommandScheduler::burst(std::span<const BurstStep> steps, u64 reps)
{
    if (steps.empty() || reps == 0)
        return;
    const TimeNs begin = now_;

    // Per-step constants, computed once. Each is the same expression
    // op()/sweep() evaluates per call on identical operands, so the
    // per-repetition loop below reproduces the per-command arithmetic
    // bit for bit.
    struct Prep
    {
        TimeNs lat = 0.0;    // stretched op latency / sweep step
        TimeNs tail = 0.0;   // stretched sweep tail latency
        EnergyPj e = 0.0;    // energy added per repetition
        u64 acts = 0;        // op: total ACTs per repetition
    };
    std::vector<Prep> prep(steps.size());
    for (std::size_t s = 0; s < steps.size(); ++s) {
        const BurstStep &st = steps[s];
        PLUTO_ASSERT(st.parallel >= 1);
        Prep &p = prep[s];
        p.lat = stretched(st.latency);
        if (st.isSweep) {
            p.tail = stretched(st.tailLatency);
            p.e = (st.energy * st.rows + st.tailEnergy) * st.parallel;
        } else {
            p.e = st.energy * st.parallel;
            p.acts = static_cast<u64>(st.numActs) *
                     static_cast<u64>(st.parallel);
        }
    }

    TimeNs stall = 0.0;
    for (u64 k = 0; k < reps; ++k) {
        for (std::size_t s = 0; s < steps.size(); ++s) {
            const BurstStep &st = steps[s];
            const Prep &p = prep[s];
            if (st.isSweep) {
                for (u32 r = 0; r < st.rows; ++r) {
                    const TimeNs last =
                        faw_.reserveBatch(now_, st.parallel);
                    stall += last - now_;
                    now_ = last + p.lat;
                }
                now_ += p.tail;
            } else {
                TimeNs start = now_;
                if (st.numActs > 0) {
                    start = faw_.reserveBatch(now_, p.acts);
                    stall += start - now_;
                }
                now_ = start + p.lat;
            }
            energy_ += p.e;
        }
    }

    // Bookkeeping, hoisted out of the hot loop. All counter deltas
    // are integer-valued and stay below 2^53, so a single multiplied
    // add equals `reps` unit adds exactly; the ".ns" sums are the one
    // documented ulp-level divergence.
    if (stall > 0.0)
        stats_.add("dram.tfaw_stall.ns", stall);
    const double dreps = static_cast<double>(reps);
    for (std::size_t s = 0; s < steps.size(); ++s) {
        const BurstStep &st = steps[s];
        stats_.add(st.stat, dreps);
        if (st.isSweep) {
            stats_.add("dram.acts", static_cast<double>(st.rows) *
                                        st.parallel * dreps);
            stats_.add(std::string(st.stat) + ".rows",
                       static_cast<double>(st.rows) * dreps);
        } else {
            if (st.numActs > 0)
                stats_.add("dram.acts",
                           static_cast<double>(prep[s].acts) * dreps);
            stats_.add(std::string(st.stat) + ".ns",
                       prep[s].lat * dreps);
        }
    }
    record(steps.front().stat, begin, now_);
}

void
CommandScheduler::hostTime(TimeNs latency, EnergyPj energy)
{
    const TimeNs begin = now_;
    now_ += latency;
    energy_ += energy;
    stats_.add("host.ns", latency);
    record("host", begin, now_);
}

void
CommandScheduler::reset()
{
    now_ = 0.0;
    energy_ = 0.0;
    stats_.clear();
    faw_.reset();
    trace_.clear();
}

} // namespace pluto::dram
