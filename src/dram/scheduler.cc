#include "dram/scheduler.hh"

#include <algorithm>

#include "common/logging.hh"

namespace pluto::dram
{

FawTracker::FawTracker(TimeNs t_faw)
    : tFaw_(t_faw)
{
}

TimeNs
FawTracker::reserve(TimeNs candidate)
{
    if (tFaw_ <= 0.0)
        return candidate;
    TimeNs t = candidate;
    if (acts_.size() >= 4)
        t = std::max(t, acts_[acts_.size() - 4] + tFaw_);
    acts_.push_back(t);
    if (acts_.size() > 4)
        acts_.pop_front();
    return t;
}

TimeNs
FawTracker::reserveBatch(TimeNs candidate, u64 count)
{
    if (count == 0)
        return candidate;
    if (tFaw_ <= 0.0)
        return candidate;
    TimeNs last = candidate;
    for (u64 i = 0; i < count; ++i)
        last = reserve(i == 0 ? candidate : last);
    return last;
}

void
FawTracker::reset()
{
    acts_.clear();
}

CommandScheduler::CommandScheduler(const TimingParams &timing,
                                   const EnergyParams &energy,
                                   double faw_scale)
    : timing_(timing), energyParams_(energy),
      faw_(timing.tFAW * faw_scale)
{
    if (faw_scale < 0.0 || faw_scale > 1.0)
        fatal("tFAW scale %f out of [0,1]", faw_scale);
}

TimeNs
CommandScheduler::stretched(TimeNs latency) const
{
    return modelRefresh_ ? latency * timing_.refreshStretch() : latency;
}

void
CommandScheduler::record(const char *name, TimeNs start, TimeNs end)
{
    if (traceLimit_ == 0)
        return;
    stats_.inc("trace.events");
    if (trace_.size() < traceLimit_)
        trace_.push_back({name, start, end});
}

void
CommandScheduler::setTraceLimit(std::size_t limit)
{
    traceLimit_ = limit;
    trace_.clear();
    trace_.reserve(std::min<std::size_t>(limit, 4096));
}

void
CommandScheduler::op(const char *stat, TimeNs latency,
                     EnergyPj energy_per_unit, u32 num_acts, u32 parallel)
{
    PLUTO_ASSERT(parallel >= 1);
    TimeNs start = now_;
    if (num_acts > 0) {
        const u64 total_acts =
            static_cast<u64>(num_acts) * static_cast<u64>(parallel);
        start = faw_.reserveBatch(now_, total_acts);
        stats_.add("dram.acts", static_cast<double>(total_acts));
    }
    now_ = start + stretched(latency);
    energy_ += energy_per_unit * parallel;
    stats_.inc(stat);
    stats_.add(std::string(stat) + ".ns", stretched(latency));
    record(stat, start, now_);
}

void
CommandScheduler::sweep(const char *stat, u32 num_rows, TimeNs step_latency,
                        EnergyPj step_energy, u32 parallel,
                        TimeNs tail_latency, EnergyPj tail_energy)
{
    PLUTO_ASSERT(parallel >= 1);
    const TimeNs begin = now_;
    const TimeNs step = stretched(step_latency);
    for (u32 r = 0; r < num_rows; ++r) {
        // All `parallel` subarrays activate their next LUT row in
        // lock-step; each activation reserves a tFAW slot.
        const TimeNs last_act = faw_.reserveBatch(now_, parallel);
        now_ = last_act + step;
    }
    now_ += stretched(tail_latency);
    energy_ += (step_energy * num_rows + tail_energy) * parallel;
    stats_.add("dram.acts",
               static_cast<double>(num_rows) * parallel);
    stats_.inc(stat);
    stats_.add(std::string(stat) + ".rows",
               static_cast<double>(num_rows));
    record(stat, begin, now_);
}

void
CommandScheduler::hostTime(TimeNs latency, EnergyPj energy)
{
    const TimeNs begin = now_;
    now_ += latency;
    energy_ += energy;
    stats_.add("host.ns", latency);
    record("host", begin, now_);
}

void
CommandScheduler::reset()
{
    now_ = 0.0;
    energy_ = 0.0;
    stats_.clear();
    faw_.reset();
    trace_.clear();
}

} // namespace pluto::dram
