/**
 * @file
 * DRAM timing parameter sets.
 *
 * Two presets mirror the paper's evaluated configurations (Table 3):
 *  - DDR4-2400, 17-17-17 (tRCD = tRP = tCL = 14.16 ns), 8 kB rows,
 *    512 rows per subarray, 16-subarray default parallelism;
 *  - HMC-style 3D-stacked ("3DS") memory with 256 B rows, 512-subarray
 *    default parallelism, and ~38% faster activations (Section 8.2).
 *
 * Derived latencies for the enhanced-DRAM substrate operations
 * (RowClone-FPM, LISA-RBM, Ambit AAP/TRA, DRISA shifts) are computed
 * from these primitives; see ops/costs.hh.
 */

#ifndef PLUTO_DRAM_TIMING_HH
#define PLUTO_DRAM_TIMING_HH

#include <string>

#include "common/types.hh"
#include "common/units.hh"

namespace pluto::dram
{

/** Memory technology family. */
enum class MemoryKind
{
    Ddr4,
    Hmc3ds,
};

/** @return short display name ("DDR4" / "3DS"). */
const char *memoryKindName(MemoryKind kind);

/** Core DRAM timing constants, all in nanoseconds. */
struct TimingParams
{
    std::string name;
    MemoryKind kind = MemoryKind::Ddr4;

    /** Clock period. */
    TimeNs tCK = 0.0;
    /** ACT-to-column command delay (sense completion). */
    TimeNs tRCD = 0.0;
    /** Precharge latency. */
    TimeNs tRP = 0.0;
    /** Minimum row-open time (ACT to PRE). */
    TimeNs tRAS = 0.0;
    /** CAS latency. */
    TimeNs tCL = 0.0;
    /**
     * Four-activation window: at most 4 ACTs may issue per rank within
     * any tFAW span. The paper models 13.328 ns as the nominal value
     * (Section 8.7) and evaluates pLUTo with tFAW = 0 (unthrottled,
     * Table 3) unless stated otherwise.
     */
    TimeNs tFAW = 0.0;
    /**
     * Latency of a LISA-RBM row-buffer-movement copy of one full row
     * between neighboring subarrays (activation + linked-bitline
     * transfer + restore). Calibrated to 3x tRCD so that the
     * pLUTo-GSA : pLUTo-BSA slowdown matches the paper's ~2x
     * (Figure 7; see DESIGN.md Section 4).
     */
    TimeNs lisaRbm = 0.0;
    /** Average refresh interval (per-rank REF cadence). */
    TimeNs tREFI = 0.0;
    /** Refresh cycle time (bank unavailable during REF). */
    TimeNs tRFC = 0.0;

    /**
     * Fraction of time lost to refresh when refresh modeling is
     * enabled: commands stretch by 1 / (1 - tRFC/tREFI).
     */
    double
    refreshStretch() const
    {
        if (tREFI <= 0.0 || tRFC <= 0.0 || tRFC >= tREFI)
            return 1.0;
        return 1.0 / (1.0 - tRFC / tREFI);
    }

    /** DDR4-2400 17-17-17 preset (Table 3). */
    static TimingParams ddr4_2400();
    /** HMC-style 3D-stacked preset. */
    static TimingParams hmc3ds();

    /** Preset lookup by kind. */
    static TimingParams forKind(MemoryKind kind);
};

/** Per-command DRAM energies, in picojoules. */
struct EnergyParams
{
    /** Energy of one row activation (charge sharing + sensing). */
    EnergyPj eAct = 0.0;
    /** Energy of one precharge. */
    EnergyPj ePre = 0.0;
    /** Energy of one LISA-RBM full-row copy. */
    EnergyPj eLisa = 0.0;
    /** Per-byte energy of moving data over the channel (RD/WR I/O). */
    EnergyPj eIoPerByte = 0.0;
    /**
     * Activation-energy discount for pLUTo-GMC sweeps: in GMC only
     * matched bitlines share charge and enable their sense amplifiers
     * (Section 5.3.1), so a sweep activation moves less charge than a
     * full-row activation. Calibrated so the BSA:GMC energy ratio
     * matches the paper's ~1.66x (Figure 10).
     */
    double gmcActDiscount = 1.0;
    /**
     * Device background power (peripherals, refresh, the pLUTo
     * controller) charged over a workload's elapsed time in addition
     * to per-command energy. DDR4 is calibrated so pLUTo-BSA's total
     * power lands near Table 6's 11 W; the 3DS/HMC substrate is
     * notoriously power-hungry (logic layer + TSVs), which is why the
     * paper's 3DS energy savings are ~8x smaller than DDR4's
     * (Section 8.3).
     */
    PowerW backgroundPower = 0.0;

    /** DDR4 preset (CACTI-7-anchored magnitudes, see DESIGN.md). */
    static EnergyParams ddr4();
    /** 3DS preset (rows are 32x smaller than DDR4's). */
    static EnergyParams hmc3ds();

    /** Preset lookup by kind. */
    static EnergyParams forKind(MemoryKind kind);
};

} // namespace pluto::dram

#endif // PLUTO_DRAM_TIMING_HH
