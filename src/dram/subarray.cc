#include "dram/subarray.hh"

#include <algorithm>

#include "common/logging.hh"

namespace pluto::dram
{

Subarray::Subarray(u32 rows, u32 row_bytes)
    : rows_(rows), rowBytes_(row_bytes)
{
    PLUTO_ASSERT(rows_ > 0 && rowBytes_ > 0);
}

void
Subarray::checkRow(RowIndex idx) const
{
    if (idx >= rows_)
        panic("row index %u out of range (subarray has %u rows)",
              idx, rows_);
}

std::span<u8>
Subarray::row(RowIndex idx)
{
    checkRow(idx);
    auto it = storage_.find(idx);
    if (it == storage_.end())
        it = storage_.emplace(idx, std::vector<u8>(rowBytes_, 0)).first;
    destroyed_[idx] = false;
    return it->second;
}

std::vector<u8>
Subarray::readRow(RowIndex idx) const
{
    checkRow(idx);
    const auto it = storage_.find(idx);
    if (it == storage_.end())
        return std::vector<u8>(rowBytes_, 0);
    return it->second;
}

const u8 *
Subarray::rowData(RowIndex idx) const
{
    checkRow(idx);
    const auto it = storage_.find(idx);
    return it == storage_.end() ? nullptr : it->second.data();
}

void
Subarray::writeRow(RowIndex idx, std::span<const u8> data)
{
    checkRow(idx);
    if (data.size() != rowBytes_)
        panic("writeRow size %zu != rowBytes %u", data.size(), rowBytes_);
    auto dst = row(idx);
    std::copy(data.begin(), data.end(), dst.begin());
}

void
Subarray::clearRow(RowIndex idx)
{
    checkRow(idx);
    auto dst = row(idx);
    std::fill(dst.begin(), dst.end(), 0);
}

bool
Subarray::rowValid(RowIndex idx) const
{
    checkRow(idx);
    const auto it = destroyed_.find(idx);
    return it == destroyed_.end() || !it->second;
}

void
Subarray::destroyRow(RowIndex idx)
{
    checkRow(idx);
    destroyed_[idx] = true;
}

void
Subarray::copyRow(RowIndex src, RowIndex dst)
{
    if (src == dst)
        return;
    const auto data = readRow(src);
    writeRow(dst, data);
}

} // namespace pluto::dram
