/**
 * @file
 * Functional model of a DRAM module: banks of subarrays (Figure 1).
 */

#ifndef PLUTO_DRAM_MODULE_HH
#define PLUTO_DRAM_MODULE_HH

#include <memory>
#include <vector>

#include "dram/address.hh"
#include "dram/geometry.hh"
#include "dram/subarray.hh"

namespace pluto::dram
{

/** One DRAM bank: a vector of subarrays sharing peripheral logic. */
class Bank
{
  public:
    Bank(u32 subarrays, u32 rows, u32 row_bytes);

    /** @return subarray `idx`. */
    Subarray &subarray(SubarrayIndex idx);
    const Subarray &subarray(SubarrayIndex idx) const;

    /** @return number of subarrays. */
    u32 subarrays() const { return static_cast<u32>(subs_.size()); }

  private:
    std::vector<Subarray> subs_;
};

/** One DRAM module. Owns all functional state. */
class Module
{
  public:
    explicit Module(const Geometry &geom);

    const Geometry &geometry() const { return geom_; }

    /** @return bank `idx`. */
    Bank &bank(BankIndex idx);
    const Bank &bank(BankIndex idx) const;

    /** @return the subarray at `addr`. */
    Subarray &subarrayAt(const SubarrayAddress &addr);
    const Subarray &subarrayAt(const SubarrayAddress &addr) const;

    /** Mutable view of the row at `addr`. */
    std::span<u8> rowAt(const RowAddress &addr);

    /** Read-only snapshot of the row at `addr`. */
    std::vector<u8> readRow(const RowAddress &addr) const;

    /**
     * Zero-copy read-only view of the row at `addr`; untouched rows
     * alias a shared all-zero row. The view stays valid across
     * touches of other rows but not across writes to this row.
     */
    std::span<const u8> peekRow(const RowAddress &addr) const;

    /** Overwrite the row at `addr`. */
    void writeRow(const RowAddress &addr, std::span<const u8> data);

  private:
    Geometry geom_;
    std::vector<Bank> banks_;
    /** Shared backing for peekRow() of never-touched rows. */
    std::vector<u8> zeroRow_;
};

} // namespace pluto::dram

#endif // PLUTO_DRAM_MODULE_HH
