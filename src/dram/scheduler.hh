/**
 * @file
 * Command-stream timing and energy accounting.
 *
 * Following the paper's methodology (Section 7.1: "Our simulator
 * estimates the performance of pLUTo operations by parsing the
 * sequence of memory commands required to perform them and enforcing
 * the memory's timing parameters"), the scheduler consumes an ordered
 * stream of DRAM operations and tracks elapsed time, consumed energy,
 * and per-command counters. Activations pass through a tFAW sliding-
 * window tracker (at most four ACTs per window per rank, Section 8.7);
 * the window can be scaled from 0% (unthrottled, the paper's default
 * configuration in Table 3) to 100% (nominal) for the Figure 13 sweep.
 */

#ifndef PLUTO_DRAM_SCHEDULER_HH
#define PLUTO_DRAM_SCHEDULER_HH

#include <array>
#include <span>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/units.hh"
#include "dram/timing.hh"

namespace pluto::dram
{

/**
 * Sliding-window tFAW tracker: at most 4 row activations may issue in
 * any tFAW-long window. A window of 0 disables the constraint.
 *
 * State is a fixed 4-slot ring (the window never needs more than the
 * last four issue times), so reserve() is allocation-free and
 * reserveBatch() runs a tight scalar loop: one max and one add per
 * ACT, the information-theoretic minimum for results bit-identical to
 * issuing the ACTs one by one.
 */
class FawTracker
{
  public:
    explicit FawTracker(TimeNs t_faw);

    /**
     * Reserve one ACT issue slot no earlier than `candidate`.
     * @return the actual issue time.
     */
    TimeNs reserve(TimeNs candidate);

    /**
     * Reserve `count` back-to-back ACT slots starting no earlier than
     * `candidate` (each subsequent ACT's candidate is its
     * predecessor's issue time). Bit-identical to `count` successive
     * reserve() calls. @return the issue time of the last ACT.
     */
    TimeNs reserveBatch(TimeNs candidate, u64 count);

    /** Forget all recorded activations. */
    void reset();

    /** @return the tracked window length. */
    TimeNs window() const { return tFaw_; }

  private:
    TimeNs tFaw_;
    /** Ring of the most recent ACT issue times, oldest at `head_`. */
    std::array<TimeNs, 4> acts_{};
    u32 head_ = 0;
    u32 count_ = 0;
};

/** One recorded command event (optional tracing). */
struct TraceEvent
{
    std::string name;
    TimeNs start = 0.0;
    TimeNs end = 0.0;
};

/**
 * One step of a homogeneous command burst (see
 * CommandScheduler::burst): either a serial op() (isSweep false;
 * latency / energy / numActs / parallel mean what they mean there) or
 * a sweep() (isSweep true; latency / energy are the per-row step
 * values, rows / tailLatency / tailEnergy as in sweep()).
 */
struct BurstStep
{
    const char *stat = "";
    bool isSweep = false;
    /** op latency, or sweep step latency. */
    TimeNs latency = 0.0;
    /** op energy per unit, or sweep step energy. */
    EnergyPj energy = 0.0;
    /** op only: row activations per participating subarray. */
    u32 numActs = 0;
    /** sweep only: consecutive activations per lane. */
    u32 rows = 0;
    u32 parallel = 1;
    /** sweep only: trailing latency (e.g. the final PRE). */
    TimeNs tailLatency = 0.0;
    /** sweep only: trailing energy. */
    EnergyPj tailEnergy = 0.0;
};

/**
 * Serial command-stream scheduler. All pLUTo ISA instructions expand
 * into calls on this interface; elapsed() and energy() then give the
 * end-to-end execution time and energy of the program.
 */
class CommandScheduler
{
  public:
    /**
     * @param timing Timing preset.
     * @param energy Energy preset.
     * @param faw_scale Fraction of the nominal tFAW to enforce:
     *        0.0 = unthrottled (paper default), 1.0 = nominal.
     */
    CommandScheduler(const TimingParams &timing, const EnergyParams &energy,
                     double faw_scale = 0.0);

    /**
     * A serial DRAM operation executed simultaneously on `parallel`
     * subarrays. Time advances once by `latency`; energy and ACT
     * counts scale with `parallel`.
     *
     * @param stat Counter name (e.g. "cmd.aap").
     * @param latency Operation latency in ns.
     * @param energy_per_unit Energy per participating subarray, pJ.
     * @param num_acts Row activations per participating subarray.
     * @param parallel Number of subarrays operating in lock-step.
     */
    void op(const char *stat, TimeNs latency, EnergyPj energy_per_unit,
            u32 num_acts = 0, u32 parallel = 1);

    /**
     * A pLUTo Row Sweep: `num_rows` consecutive activations in each of
     * `parallel` subarrays, with `step_latency` between consecutive
     * activations and an optional trailing `tail_latency` (e.g. the
     * single final PRE of pLUTo-GSA/GMC sweeps).
     */
    void sweep(const char *stat, u32 num_rows, TimeNs step_latency,
               EnergyPj step_energy, u32 parallel,
               TimeNs tail_latency = 0.0, EnergyPj tail_energy = 0.0);

    /**
     * Batch fast path: account `reps` repetitions of the `steps`
     * command group in one call. The per-repetition time, energy and
     * tFAW arithmetic is exactly the sequence op()/sweep() would
     * perform, in the same order, so elapsed(), energyTotal(), the
     * tFAW window state and all integer counters are bit-identical to
     * issuing the commands individually — only the bookkeeping is
     * hoisted: stats are committed once per step (O(1) per burst
     * instead of O(reps) string/map operations), and tracing records
     * a single event spanning the burst (named after the first step).
     * The one permitted divergence: per-step ".ns" counter sums may
     * differ from the per-command path in the final ulp (a single
     * product replaces `reps` accumulations).
     */
    void burst(std::span<const BurstStep> steps, u64 reps);

    /**
     * Host-side (CPU) serial time, e.g. the CRC reduction step that
     * cannot execute in DRAM (Section 8.2).
     */
    void hostTime(TimeNs latency, EnergyPj energy = 0.0);

    /** @return current end-of-stream time. */
    TimeNs elapsed() const { return now_; }

    /** @return total consumed energy. */
    EnergyPj energyTotal() const { return energy_; }

    /** @return mutable command counters. */
    StatSet &stats() { return stats_; }
    const StatSet &stats() const { return stats_; }

    /** @return the timing preset in use. */
    const TimingParams &timing() const { return timing_; }

    /** @return the energy preset in use. */
    const EnergyParams &energyParams() const { return energyParams_; }

    /** Reset time, energy, counters and the tFAW window. */
    void reset();

    /**
     * Model refresh interference: every DRAM command stretches by
     * 1 / (1 - tRFC/tREFI) (~4.7% for DDR4). Off by default, as in
     * the paper's evaluation; the ablation bench quantifies it.
     */
    void setModelRefresh(bool on) { modelRefresh_ = on; }

    /** @return whether refresh interference is modeled. */
    bool modelRefresh() const { return modelRefresh_; }

    /**
     * Record up to `limit` command events for inspection (0 disables
     * tracing). Events past the limit are counted but dropped.
     */
    void setTraceLimit(std::size_t limit);

    /** @return recorded command events, in issue order. */
    const std::vector<TraceEvent> &trace() const { return trace_; }

  private:
    /** Refresh-adjusted DRAM latency. */
    TimeNs stretched(TimeNs latency) const;

    void record(const char *name, TimeNs start, TimeNs end);

    TimingParams timing_;
    EnergyParams energyParams_;
    FawTracker faw_;
    TimeNs now_ = 0.0;
    EnergyPj energy_ = 0.0;
    StatSet stats_;
    bool modelRefresh_ = false;
    std::size_t traceLimit_ = 0;
    std::vector<TraceEvent> trace_;
};

} // namespace pluto::dram

#endif // PLUTO_DRAM_SCHEDULER_HH
