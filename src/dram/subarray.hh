/**
 * @file
 * Functional model of a DRAM subarray: a 2-D array of cells organized
 * as rows, plus a local row buffer. Row storage is allocated lazily;
 * untouched rows read as all-zero, so paper-scale geometries (8 GB
 * modules) can be modeled without allocating 8 GB.
 *
 * The subarray also tracks per-row validity, which the pLUTo-GSA
 * design uses to model its destructive row sweeps (Section 5.2.1):
 * after a GSA sweep, unmatched LUT rows lose their contents and must
 * be reloaded before the next query.
 */

#ifndef PLUTO_DRAM_SUBARRAY_HH
#define PLUTO_DRAM_SUBARRAY_HH

#include <span>
#include <unordered_map>
#include <vector>

#include "common/types.hh"

namespace pluto::dram
{

/** One DRAM subarray: rowsPerSubarray rows of rowBytes bytes. */
class Subarray
{
  public:
    Subarray(u32 rows, u32 row_bytes);

    /** @return number of rows. */
    u32 rows() const { return rows_; }

    /** @return bytes per row. */
    u32 rowBytes() const { return rowBytes_; }

    /**
     * Mutable access to a row's cells, allocating backing storage on
     * first touch. Marks the row valid.
     */
    std::span<u8> row(RowIndex idx);

    /** Read-only snapshot of a row (all-zero if never touched). */
    std::vector<u8> readRow(RowIndex idx) const;

    /**
     * Zero-copy view of a row's storage, or nullptr if the row was
     * never touched (reads as all-zero). The pointer stays valid
     * across later row() touches of other rows (node-based storage).
     */
    const u8 *rowData(RowIndex idx) const;

    /** Overwrite a row's contents (data must be rowBytes long). */
    void writeRow(RowIndex idx, std::span<const u8> data);

    /** Zero a row and mark it valid. */
    void clearRow(RowIndex idx);

    /**
     * @return true if the row currently holds defined data. Rows start
     * valid (all-zero); destroyRow() invalidates them.
     */
    bool rowValid(RowIndex idx) const;

    /**
     * Model a destructive read: the row's charge was shared with the
     * bitline and never restored (pLUTo-GSA sweeps). The contents
     * become undefined until the next writeRow()/row() touch.
     */
    void destroyRow(RowIndex idx);

    /**
     * Intra-subarray copy (RowClone-FPM semantics, Section 2.2):
     * activate src, then dst, so the row buffer's contents latch into
     * dst.
     */
    void copyRow(RowIndex src, RowIndex dst);

  private:
    void checkRow(RowIndex idx) const;

    u32 rows_;
    u32 rowBytes_;
    /** Lazily allocated row storage. */
    std::unordered_map<RowIndex, std::vector<u8>> storage_;
    /** Rows whose contents were destroyed by a GSA sweep. */
    std::unordered_map<RowIndex, bool> destroyed_;
};

} // namespace pluto::dram

#endif // PLUTO_DRAM_SUBARRAY_HH
