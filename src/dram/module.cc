#include "dram/module.hh"

#include "common/logging.hh"

namespace pluto::dram
{

Bank::Bank(u32 subarrays, u32 rows, u32 row_bytes)
{
    subs_.reserve(subarrays);
    for (u32 i = 0; i < subarrays; ++i)
        subs_.emplace_back(rows, row_bytes);
}

Subarray &
Bank::subarray(SubarrayIndex idx)
{
    if (idx >= subs_.size())
        panic("subarray index %u out of range (%zu)", idx, subs_.size());
    return subs_[idx];
}

const Subarray &
Bank::subarray(SubarrayIndex idx) const
{
    if (idx >= subs_.size())
        panic("subarray index %u out of range (%zu)", idx, subs_.size());
    return subs_[idx];
}

Module::Module(const Geometry &geom)
    : geom_(geom), zeroRow_(geom.rowBytes, 0)
{
    banks_.reserve(geom_.banks);
    for (u32 b = 0; b < geom_.banks; ++b)
        banks_.emplace_back(geom_.subarraysPerBank, geom_.rowsPerSubarray,
                            geom_.rowBytes);
}

Bank &
Module::bank(BankIndex idx)
{
    if (idx >= banks_.size())
        panic("bank index %u out of range (%zu)", idx, banks_.size());
    return banks_[idx];
}

const Bank &
Module::bank(BankIndex idx) const
{
    if (idx >= banks_.size())
        panic("bank index %u out of range (%zu)", idx, banks_.size());
    return banks_[idx];
}

Subarray &
Module::subarrayAt(const SubarrayAddress &addr)
{
    return bank(addr.bank).subarray(addr.subarray);
}

const Subarray &
Module::subarrayAt(const SubarrayAddress &addr) const
{
    return bank(addr.bank).subarray(addr.subarray);
}

std::span<u8>
Module::rowAt(const RowAddress &addr)
{
    return bank(addr.bank).subarray(addr.subarray).row(addr.row);
}

std::vector<u8>
Module::readRow(const RowAddress &addr) const
{
    return bank(addr.bank).subarray(addr.subarray).readRow(addr.row);
}

std::span<const u8>
Module::peekRow(const RowAddress &addr) const
{
    const u8 *p =
        bank(addr.bank).subarray(addr.subarray).rowData(addr.row);
    return p ? std::span<const u8>(p, geom_.rowBytes)
             : std::span<const u8>(zeroRow_);
}

void
Module::writeRow(const RowAddress &addr, std::span<const u8> data)
{
    bank(addr.bank).subarray(addr.subarray).writeRow(addr.row, data);
}

} // namespace pluto::dram
