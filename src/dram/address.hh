/**
 * @file
 * Row-granularity DRAM addressing. pLUTo operates on whole rows and
 * whole subarrays, so an address names (bank, subarray, row).
 */

#ifndef PLUTO_DRAM_ADDRESS_HH
#define PLUTO_DRAM_ADDRESS_HH

#include <compare>
#include <string>

#include "common/types.hh"

namespace pluto::dram
{

/** Location of one DRAM row inside a module. */
struct RowAddress
{
    BankIndex bank = 0;
    SubarrayIndex subarray = 0;
    RowIndex row = 0;

    auto operator<=>(const RowAddress &) const = default;

    /** Human-readable form, e.g. "b2.s5.r17". */
    std::string str() const;
};

/** Location of one subarray inside a module. */
struct SubarrayAddress
{
    BankIndex bank = 0;
    SubarrayIndex subarray = 0;

    auto operator<=>(const SubarrayAddress &) const = default;

    /** @return address of row `row` inside this subarray. */
    RowAddress rowAt(RowIndex row) const { return {bank, subarray, row}; }

    /** Human-readable form, e.g. "b2.s5". */
    std::string str() const;
};

} // namespace pluto::dram

#endif // PLUTO_DRAM_ADDRESS_HH
