/**
 * @file
 * The pLUTo ISA (Section 6.1, Table 2): instructions that allocate
 * pLUTo registers, perform pLUTo Row Sweeps (pluto_op), and
 * manipulate data in-DRAM (bitwise logic [Ambit], bit-/byte-level
 * shifting [DRISA], and row movement [LISA]).
 *
 * Instructions name *pLUTo registers*: row registers ($prgN) identify
 * contiguously allocated DRAM rows used as LUT-query inputs/outputs;
 * subarray registers ($lut_rgN) identify LUT-holding subarrays.
 */

#ifndef PLUTO_ISA_INSTRUCTION_HH
#define PLUTO_ISA_INSTRUCTION_HH

#include <string>

#include "common/types.hh"

namespace pluto::isa
{

/** pLUTo ISA opcodes (Table 2). */
enum class Opcode
{
    /** pluto_row_alloc dst, size, bitwidth */
    RowAlloc,
    /** pluto_subarray_alloc dst, num_rows, lut_file */
    SubarrayAlloc,
    /** pluto_op dst, src, lut_subarr, lut_size, lut_bitw */
    LutOp,
    /** pluto_not dst, src1 */
    Not,
    /** pluto_and dst, src1, src2 */
    And,
    /** pluto_or dst, src1, src2 */
    Or,
    /** pluto_xor dst, src1, src2 */
    Xor,
    /**
     * Merge of two already-aligned operand rows via a bare
     * triple-row activation (the cheap pluto_or the compiler emits
     * for operand packing; Section 8.9).
     */
    MergeOr,
    /** pluto_bit_shift_l src, #N */
    BitShiftL,
    /** pluto_bit_shift_r src, #N */
    BitShiftR,
    /** pluto_byte_shift_l src, #N */
    ByteShiftL,
    /** pluto_byte_shift_r src, #N */
    ByteShiftR,
    /** pluto_move dst, src */
    Move,
};

/** @return assembler mnemonic for `op`. */
const char *opcodeName(Opcode op);

/** @return true if the opcode writes a row register. */
bool opcodeWritesRow(Opcode op);

/** One pLUTo ISA instruction. */
struct Instruction
{
    Opcode op = Opcode::Move;

    /** Destination register (row register; subarray reg for allocs). */
    i32 dst = -1;
    /** First source row register. */
    i32 src1 = -1;
    /** Second source row register (binary bitwise ops). */
    i32 src2 = -1;
    /** LutOp: subarray register holding the LUT. */
    i32 lutReg = -1;

    /** RowAlloc: number of elements. */
    u64 size = 0;
    /** RowAlloc / LutOp: element bit width (lut_bitw). */
    u32 bitwidth = 0;
    /** LutOp / SubarrayAlloc: number of LUT elements (rows). */
    u32 lutSize = 0;
    /** Shifts: shift amount (bits or bytes). */
    u32 amount = 0;
    /** SubarrayAlloc: named LUT contents ("lut_file" reference). */
    std::string lutName;

    /** Disassemble to paper-style text (Figure 5c). */
    std::string str() const;
};

/** Factory helpers for well-formed instructions. */
Instruction makeRowAlloc(i32 dst, u64 size, u32 bitwidth);
Instruction makeSubarrayAlloc(i32 dst, u32 num_rows, std::string lut_name);
Instruction makeLutOp(i32 dst, i32 src, i32 lut_reg, u32 lut_size,
                      u32 lut_bitw);
Instruction makeBitwise(Opcode op, i32 dst, i32 src1, i32 src2 = -1);
Instruction makeShift(Opcode op, i32 reg, u32 amount);
Instruction makeMove(i32 dst, i32 src);

} // namespace pluto::isa

#endif // PLUTO_ISA_INSTRUCTION_HH
