/**
 * @file
 * pLUTo ISA assembler: parses the textual form produced by
 * Program::disassemble() (and hand-written programs in the same
 * syntax) back into an executable Program. Supports '#' comments and
 * blank lines. Together with the disassembler this gives a lossless
 * text round-trip, used for file-driven programs and in tests.
 *
 * Syntax per line (Figure 5c style):
 *   pluto_row_alloc $prg0, 1024, 8
 *   pluto_subarray_alloc $lut_rg0, "add4" (256 rows)
 *   pluto_op $prg1, $prg0, $lut_rg0, 256, 8
 *   pluto_and $prg2, $prg0, $prg1
 *   pluto_bit_shift_l $prg0, #4
 *   pluto_move $prg1, $prg0
 */

#ifndef PLUTO_ISA_ASSEMBLER_HH
#define PLUTO_ISA_ASSEMBLER_HH

#include <string>

#include "isa/program.hh"

namespace pluto::isa
{

/** Result of assembling a source text. */
struct AssembleResult
{
    Program program;
    /** Empty on success; a "line N: message" diagnostic otherwise. */
    std::string error;

    bool ok() const { return error.empty(); }
};

/** Assemble `source` into a Program. Never fatals: errors returned. */
AssembleResult assemble(const std::string &source);

} // namespace pluto::isa

#endif // PLUTO_ISA_ASSEMBLER_HH
