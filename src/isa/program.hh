/**
 * @file
 * A pLUTo program: an ordered list of pLUTo ISA instructions plus the
 * register count metadata the controller needs to execute it.
 */

#ifndef PLUTO_ISA_PROGRAM_HH
#define PLUTO_ISA_PROGRAM_HH

#include <string>
#include <vector>

#include "isa/instruction.hh"

namespace pluto::isa
{

/** An executable sequence of pLUTo ISA instructions. */
class Program
{
  public:
    /** Append an instruction; @return its index. */
    std::size_t append(Instruction instr);

    /** @return all instructions in order. */
    const std::vector<Instruction> &instructions() const
    {
        return instrs_;
    }

    /** @return number of instructions. */
    std::size_t size() const { return instrs_.size(); }

    bool empty() const { return instrs_.empty(); }

    /** Reserve a fresh row register id. */
    i32 newRowReg() { return rowRegs_++; }

    /** Reserve a fresh subarray register id. */
    i32 newSubarrayReg() { return saRegs_++; }

    /** @return number of row registers used. */
    i32 rowRegCount() const { return rowRegs_; }

    /** @return number of subarray registers used. */
    i32 subarrayRegCount() const { return saRegs_; }

    /** Full disassembly, one instruction per line. */
    std::string disassemble() const;

    /**
     * Validate static well-formedness: registers in range, operands
     * present for each opcode. @return empty string, or a diagnostic.
     */
    std::string validate() const;

  private:
    std::vector<Instruction> instrs_;
    i32 rowRegs_ = 0;
    i32 saRegs_ = 0;
};

} // namespace pluto::isa

#endif // PLUTO_ISA_PROGRAM_HH
