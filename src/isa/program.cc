#include "isa/program.hh"

#include <sstream>

namespace pluto::isa
{

std::size_t
Program::append(Instruction instr)
{
    instrs_.push_back(std::move(instr));
    return instrs_.size() - 1;
}

std::string
Program::disassemble() const
{
    std::ostringstream os;
    for (const auto &i : instrs_)
        os << i.str() << "\n";
    return os.str();
}

std::string
Program::validate() const
{
    auto rowOk = [&](i32 r) { return r >= 0 && r < rowRegs_; };
    auto saOk = [&](i32 r) { return r >= 0 && r < saRegs_; };
    std::ostringstream err;
    for (std::size_t k = 0; k < instrs_.size(); ++k) {
        const auto &i = instrs_[k];
        auto bad = [&](const char *what) {
            err << "instr " << k << " (" << i.str() << "): " << what;
            return err.str();
        };
        switch (i.op) {
          case Opcode::RowAlloc:
            if (!rowOk(i.dst))
                return bad("bad row register");
            if (i.size == 0 || i.bitwidth == 0)
                return bad("zero size/bitwidth");
            break;
          case Opcode::SubarrayAlloc:
            if (!saOk(i.dst))
                return bad("bad subarray register");
            if (i.lutName.empty())
                return bad("missing LUT name");
            break;
          case Opcode::LutOp:
            if (!rowOk(i.dst) || !rowOk(i.src1))
                return bad("bad row register");
            if (!saOk(i.lutReg))
                return bad("bad subarray register");
            if (i.lutSize == 0 || (i.lutSize & (i.lutSize - 1)) != 0)
                return bad("lut_size must be a power of two");
            break;
          case Opcode::Not:
          case Opcode::Move:
            if (!rowOk(i.dst) || !rowOk(i.src1))
                return bad("bad row register");
            break;
          case Opcode::And:
          case Opcode::Or:
          case Opcode::Xor:
          case Opcode::MergeOr:
            if (!rowOk(i.dst) || !rowOk(i.src1) || !rowOk(i.src2))
                return bad("bad row register");
            break;
          case Opcode::BitShiftL:
          case Opcode::BitShiftR:
          case Opcode::ByteShiftL:
          case Opcode::ByteShiftR:
            if (!rowOk(i.dst))
                return bad("bad row register");
            break;
        }
    }
    return {};
}

} // namespace pluto::isa
