#include "isa/assembler.hh"

#include <cctype>
#include <sstream>
#include <vector>

namespace pluto::isa
{

namespace
{

/** Tokenizer over one instruction line. */
class LineLexer
{
  public:
    explicit LineLexer(const std::string &line)
        : s_(line)
    {
    }

    void
    skipSpace()
    {
        while (pos_ < s_.size() &&
               (std::isspace(static_cast<unsigned char>(s_[pos_])) ||
                s_[pos_] == ','))
            ++pos_;
    }

    bool
    done()
    {
        skipSpace();
        return pos_ >= s_.size();
    }

    /** Read a bare word (mnemonic). */
    std::string
    word()
    {
        skipSpace();
        std::string out;
        while (pos_ < s_.size() &&
               (std::isalnum(static_cast<unsigned char>(s_[pos_])) ||
                s_[pos_] == '_'))
            out.push_back(s_[pos_++]);
        return out;
    }

    /** Read "$prgN" or "$lut_rgN"; @return register id or -1. */
    i32
    reg(const char *prefix)
    {
        skipSpace();
        const std::string want = std::string("$") + prefix;
        if (s_.compare(pos_, want.size(), want) != 0)
            return -1;
        pos_ += want.size();
        return number();
    }

    /** Read a decimal number, optionally prefixed with '#'. */
    i64
    number()
    {
        skipSpace();
        if (pos_ < s_.size() && s_[pos_] == '#')
            ++pos_;
        bool any = false;
        i64 v = 0;
        while (pos_ < s_.size() &&
               std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
            v = v * 10 + (s_[pos_++] - '0');
            any = true;
        }
        return any ? v : -1;
    }

    /** Read a quoted string; @return empty on failure. */
    std::string
    quoted()
    {
        skipSpace();
        if (pos_ >= s_.size() || s_[pos_] != '"')
            return {};
        ++pos_;
        std::string out;
        while (pos_ < s_.size() && s_[pos_] != '"')
            out.push_back(s_[pos_++]);
        if (pos_ < s_.size())
            ++pos_; // closing quote
        return out;
    }

    /** Skip a parenthesized trailer like "(256 rows)". */
    void
    skipTrailer()
    {
        skipSpace();
        if (pos_ < s_.size() && s_[pos_] == '(')
            pos_ = s_.size();
    }

  private:
    const std::string &s_;
    std::size_t pos_ = 0;
};

} // namespace

AssembleResult
assemble(const std::string &source)
{
    AssembleResult res;
    std::istringstream in(source);
    std::string line;
    std::size_t lineno = 0;
    i32 max_row = -1, max_sa = -1;

    auto fail = [&](const std::string &msg) {
        std::ostringstream os;
        os << "line " << lineno << ": " << msg;
        res.error = os.str();
        return res;
    };

    std::vector<Instruction> instrs;
    while (std::getline(in, line)) {
        ++lineno;
        const auto hash = line.find('#');
        // '#N' shift amounts also use '#'; only strip comments that
        // start a line or follow whitespace not preceded by a digit
        // context. Simpler: treat '#' as comment only when it is the
        // first non-space character.
        std::size_t first = line.find_first_not_of(" \t");
        if (first == std::string::npos)
            continue;
        if (line[first] == '#')
            continue;
        (void)hash;

        LineLexer lex(line);
        const std::string op = lex.word();
        Instruction instr;

        auto rowReg = [&](i32 &slot) {
            slot = lex.reg("prg");
            if (slot < 0)
                return false;
            max_row = std::max(max_row, slot);
            return true;
        };
        auto saReg = [&](i32 &slot) {
            slot = lex.reg("lut_rg");
            if (slot < 0)
                return false;
            max_sa = std::max(max_sa, slot);
            return true;
        };

        if (op == "pluto_row_alloc") {
            instr.op = Opcode::RowAlloc;
            if (!rowReg(instr.dst))
                return fail("expected $prgN");
            const i64 size = lex.number();
            const i64 bitw = lex.number();
            if (size <= 0 || bitw <= 0)
                return fail("expected size, bitwidth");
            instr.size = static_cast<u64>(size);
            instr.bitwidth = static_cast<u32>(bitw);
        } else if (op == "pluto_subarray_alloc") {
            instr.op = Opcode::SubarrayAlloc;
            if (!saReg(instr.dst))
                return fail("expected $lut_rgN");
            instr.lutName = lex.quoted();
            if (instr.lutName.empty())
                return fail("expected quoted LUT name");
            lex.skipTrailer();
            instr.lutSize = 0; // resolved by the controller
        } else if (op == "pluto_op") {
            instr.op = Opcode::LutOp;
            if (!rowReg(instr.dst) || !rowReg(instr.src1) ||
                !saReg(instr.lutReg))
                return fail("expected $prgD, $prgS, $lut_rgN");
            const i64 size = lex.number();
            const i64 bitw = lex.number();
            if (size <= 0 || bitw <= 0)
                return fail("expected lut_size, lut_bitw");
            instr.lutSize = static_cast<u32>(size);
            instr.bitwidth = static_cast<u32>(bitw);
        } else if (op == "pluto_not" || op == "pluto_move") {
            instr.op =
                op == "pluto_not" ? Opcode::Not : Opcode::Move;
            if (!rowReg(instr.dst) || !rowReg(instr.src1))
                return fail("expected $prgD, $prgS");
        } else if (op == "pluto_and" || op == "pluto_or" ||
                   op == "pluto_xor" || op == "pluto_merge_or") {
            instr.op = op == "pluto_and"  ? Opcode::And
                       : op == "pluto_or" ? Opcode::Or
                       : op == "pluto_xor" ? Opcode::Xor
                                           : Opcode::MergeOr;
            if (!rowReg(instr.dst) || !rowReg(instr.src1) ||
                !rowReg(instr.src2))
                return fail("expected $prgD, $prgA, $prgB");
        } else if (op == "pluto_bit_shift_l" ||
                   op == "pluto_bit_shift_r" ||
                   op == "pluto_byte_shift_l" ||
                   op == "pluto_byte_shift_r") {
            instr.op = op == "pluto_bit_shift_l" ? Opcode::BitShiftL
                       : op == "pluto_bit_shift_r"
                           ? Opcode::BitShiftR
                       : op == "pluto_byte_shift_l"
                           ? Opcode::ByteShiftL
                           : Opcode::ByteShiftR;
            if (!rowReg(instr.dst))
                return fail("expected $prgN");
            instr.src1 = instr.dst;
            const i64 amount = lex.number();
            if (amount < 0)
                return fail("expected #amount");
            instr.amount = static_cast<u32>(amount);
        } else {
            return fail("unknown mnemonic '" + op + "'");
        }
        instrs.push_back(std::move(instr));
    }

    // SubarrayAlloc lutSize: fill from any later pluto_op that names
    // the same register (the controller validates against the
    // library's actual size; 0 means "resolve from library").
    for (auto &i : instrs) {
        if (i.op != Opcode::SubarrayAlloc)
            continue;
        for (const auto &j : instrs) {
            if (j.op == Opcode::LutOp && j.lutReg == i.dst) {
                i.lutSize = j.lutSize;
                break;
            }
        }
    }

    for (i32 r = 0; r <= max_row; ++r)
        res.program.newRowReg();
    for (i32 r = 0; r <= max_sa; ++r)
        res.program.newSubarrayReg();
    for (auto &i : instrs)
        res.program.append(std::move(i));
    const std::string err = res.program.validate();
    if (!err.empty())
        res.error = err;
    return res;
}

} // namespace pluto::isa
