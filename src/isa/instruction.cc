#include "isa/instruction.hh"

#include <cstdio>

#include "common/logging.hh"

namespace pluto::isa
{

const char *
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::RowAlloc:
        return "pluto_row_alloc";
      case Opcode::SubarrayAlloc:
        return "pluto_subarray_alloc";
      case Opcode::LutOp:
        return "pluto_op";
      case Opcode::Not:
        return "pluto_not";
      case Opcode::And:
        return "pluto_and";
      case Opcode::Or:
        return "pluto_or";
      case Opcode::Xor:
        return "pluto_xor";
      case Opcode::MergeOr:
        return "pluto_merge_or";
      case Opcode::BitShiftL:
        return "pluto_bit_shift_l";
      case Opcode::BitShiftR:
        return "pluto_bit_shift_r";
      case Opcode::ByteShiftL:
        return "pluto_byte_shift_l";
      case Opcode::ByteShiftR:
        return "pluto_byte_shift_r";
      case Opcode::Move:
        return "pluto_move";
    }
    panic("bad Opcode");
}

bool
opcodeWritesRow(Opcode op)
{
    switch (op) {
      case Opcode::LutOp:
      case Opcode::Not:
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor:
      case Opcode::MergeOr:
      case Opcode::Move:
        return true;
      default:
        return false;
    }
}

std::string
Instruction::str() const
{
    char buf[160];
    switch (op) {
      case Opcode::RowAlloc:
        std::snprintf(buf, sizeof(buf), "%s $prg%d, %llu, %u",
                      opcodeName(op), dst,
                      static_cast<unsigned long long>(size), bitwidth);
        break;
      case Opcode::SubarrayAlloc:
        std::snprintf(buf, sizeof(buf), "%s $lut_rg%d, \"%s\" (%u rows)",
                      opcodeName(op), dst, lutName.c_str(), lutSize);
        break;
      case Opcode::LutOp:
        std::snprintf(buf, sizeof(buf), "%s $prg%d, $prg%d, $lut_rg%d, "
                      "%u, %u",
                      opcodeName(op), dst, src1, lutReg, lutSize,
                      bitwidth);
        break;
      case Opcode::Not:
        std::snprintf(buf, sizeof(buf), "%s $prg%d, $prg%d",
                      opcodeName(op), dst, src1);
        break;
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor:
      case Opcode::MergeOr:
        std::snprintf(buf, sizeof(buf), "%s $prg%d, $prg%d, $prg%d",
                      opcodeName(op), dst, src1, src2);
        break;
      case Opcode::BitShiftL:
      case Opcode::BitShiftR:
      case Opcode::ByteShiftL:
      case Opcode::ByteShiftR:
        std::snprintf(buf, sizeof(buf), "%s $prg%d, #%u",
                      opcodeName(op), dst, amount);
        break;
      case Opcode::Move:
        std::snprintf(buf, sizeof(buf), "%s $prg%d, $prg%d",
                      opcodeName(op), dst, src1);
        break;
    }
    return buf;
}

Instruction
makeRowAlloc(i32 dst, u64 size, u32 bitwidth)
{
    Instruction i;
    i.op = Opcode::RowAlloc;
    i.dst = dst;
    i.size = size;
    i.bitwidth = bitwidth;
    return i;
}

Instruction
makeSubarrayAlloc(i32 dst, u32 num_rows, std::string lut_name)
{
    Instruction i;
    i.op = Opcode::SubarrayAlloc;
    i.dst = dst;
    i.lutSize = num_rows;
    i.lutName = std::move(lut_name);
    return i;
}

Instruction
makeLutOp(i32 dst, i32 src, i32 lut_reg, u32 lut_size, u32 lut_bitw)
{
    Instruction i;
    i.op = Opcode::LutOp;
    i.dst = dst;
    i.src1 = src;
    i.lutReg = lut_reg;
    i.lutSize = lut_size;
    i.bitwidth = lut_bitw;
    return i;
}

Instruction
makeBitwise(Opcode op, i32 dst, i32 src1, i32 src2)
{
    Instruction i;
    i.op = op;
    i.dst = dst;
    i.src1 = src1;
    i.src2 = src2;
    return i;
}

Instruction
makeShift(Opcode op, i32 reg, u32 amount)
{
    Instruction i;
    i.op = op;
    i.dst = reg;
    i.src1 = reg;
    i.amount = amount;
    return i;
}

Instruction
makeMove(i32 dst, i32 src)
{
    Instruction i;
    i.op = Opcode::Move;
    i.dst = dst;
    i.src1 = src;
    return i;
}

} // namespace pluto::isa
