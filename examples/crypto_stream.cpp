/**
 * @file
 * Cryptography example: table-driven CRC-32 integrity checking of
 * packet batches in DRAM (the paper's CRC workload), shown end to
 * end through the pLUTo Library API, with the per-step recurrence
 * (xor / mask / LUT query / shift) spelled out.
 */

#include <cstdio>

#include "workloads/workload.hh"

using namespace pluto;

int
main()
{
    std::printf("CRC-32 over DRAM-resident packet batches\n");
    std::printf("========================================\n\n");

    const auto crc = workloads::makeCrc(32);
    for (const auto design : {core::Design::Bsa, core::Design::Gmc}) {
        runtime::DeviceConfig cfg;
        cfg.design = design;
        runtime::PlutoDevice dev(cfg);
        // 8192 packets of 128 B.
        const auto res = crc->run(dev, 8192ull * 128);
        std::printf("%-10s  %llu bytes  %8.1f us  %6.3f mJ  "
                    "verified: %s\n",
                    core::designName(design),
                    static_cast<unsigned long long>(res.elements),
                    res.timeNs * 1e-3, res.energyPj * 1e-9,
                    res.verified ? "yes" : "NO");
    }

    std::printf("\nEach of the 128 byte-steps advances every packet's "
                "CRC at once:\n"
                "  t1    <- state ^ bytes          (Ambit XOR)\n"
                "  t1    <- t1 & 0xff              (Ambit AND)\n"
                "  t2    <- CRC32_TABLE[t1]        (pLUTo LUT query)\n"
                "  t3    <- (state >> 8) & mask    (DRISA shift + AND)\n"
                "  state <- t3 ^ t2                (Ambit XOR)\n"
                "followed by a serial CPU-side combine (Section 8.2's "
                "CRC bottleneck).\n");
    return 0;
}
