/**
 * @file
 * Image-processing pipeline example: color-grade then binarize a
 * synthetic 3-channel image entirely in DRAM, comparing the three
 * pLUTo designs' simulated time and energy — the workloads the
 * paper's image evaluation (ImgBin, ColorGrade) builds on.
 */

#include <cstdio>

#include "common/random.hh"
#include "runtime/device.hh"

using namespace pluto;
using namespace pluto::runtime;

namespace
{

void
runOn(core::Design design, const std::vector<u64> &pixels)
{
    DeviceConfig cfg;
    cfg.design = design;
    PlutoDevice dev(cfg);

    const LutHandle grade = dev.loadLut("colorgrade");
    const LutHandle bin = dev.loadLut("binarize128");
    const VecHandle in = dev.alloc(pixels.size(), 8);
    const VecHandle graded = dev.alloc(pixels.size(), 8);
    const VecHandle out = dev.alloc(pixels.size(), 8);
    dev.write(in, pixels);

    dev.resetStats();
    dev.lutOp(graded, in, grade); // tone-map every channel value
    dev.lutOp(out, graded, bin);  // then threshold
    const auto stats = dev.stats();

    // Spot-check the composition against the host.
    const auto &g = dev.library().get("colorgrade");
    const auto result = dev.read(out);
    u64 errors = 0;
    for (std::size_t i = 0; i < pixels.size(); ++i) {
        const u64 expect = g.at(pixels[i]) >= 128 ? 255 : 0;
        errors += result[i] != expect;
    }

    std::printf("%-10s  time %8.1f us  energy %7.3f mJ  errors %llu\n",
                core::designName(design), stats.timeNs * 1e-3,
                stats.energyMj(),
                static_cast<unsigned long long>(errors));
}

} // namespace

int
main()
{
    const u64 pixels = 936000ull * 3; // the paper's image size
    Rng rng(42);
    std::vector<u64> image(pixels);
    for (auto &p : image)
        p = rng.below(256);

    std::printf("Grading + binarizing a %.1f MB image in-DRAM:\n\n",
                pixels / 1048576.0);
    for (const auto d : {core::Design::Gsa, core::Design::Bsa,
                         core::Design::Gmc})
        runOn(d, image);
    std::printf("\nGMC is fastest and most energy-efficient; GSA pays "
                "a LUT reload before every query (Table 1).\n");
    return 0;
}
