/**
 * @file
 * Command-line workload runner: execute ONE workload on ONE pLUTo
 * configuration and print time / energy / verification. For batch
 * campaigns (many variants x workloads x repeats from a config file)
 * use pluto_sim, the scenario engine CLI.
 *
 * Usage:
 *   pluto_cli [--workload NAME] [--design bsa|gsa|gmc]
 *             [--memory ddr4|3ds] [--salp N] [--faw 0..1]
 *             [--refresh] [--elements N] [--list]
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "workloads/workload.hh"

using namespace pluto;

namespace
{

void
usage()
{
    std::printf(
        "usage: pluto_cli [options]\n"
        "  --workload NAME   workload to run (default ColorGrade)\n"
        "  --design D        bsa | gsa | gmc (default bsa)\n"
        "  --memory M        ddr4 | 3ds (default ddr4)\n"
        "  --salp N          subarray-level parallelism (default: "
        "preset)\n"
        "  --faw F           tFAW scale 0..1 (default 0 = "
        "unthrottled)\n"
        "  --refresh         model refresh interference\n"
        "  --elements N      input size (default: paper scale)\n"
        "  --list            list workloads and exit\n");
}

} // namespace

int
main(int argc, char **argv)
{
    std::string workload = "ColorGrade";
    runtime::DeviceConfig cfg;
    u64 elements = 0;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                usage();
                std::exit(1);
            }
            return argv[++i];
        };
        if (arg == "--list") {
            for (const auto &name : workloads::workloadNames())
                std::printf("%s\n", name.c_str());
            return 0;
        } else if (arg == "--workload") {
            workload = next();
        } else if (arg == "--design") {
            const std::string d = next();
            if (d == "bsa")
                cfg.design = core::Design::Bsa;
            else if (d == "gsa")
                cfg.design = core::Design::Gsa;
            else if (d == "gmc")
                cfg.design = core::Design::Gmc;
            else {
                usage();
                return 1;
            }
        } else if (arg == "--memory") {
            const std::string m = next();
            if (m == "ddr4")
                cfg.memory = dram::MemoryKind::Ddr4;
            else if (m == "3ds")
                cfg.memory = dram::MemoryKind::Hmc3ds;
            else {
                usage();
                return 1;
            }
        } else if (arg == "--salp") {
            cfg.salp = static_cast<u32>(std::atoi(next()));
        } else if (arg == "--faw") {
            cfg.fawScale = std::atof(next());
        } else if (arg == "--refresh") {
            cfg.modelRefresh = true;
        } else if (arg == "--elements") {
            elements = std::strtoull(next(), nullptr, 10);
        } else {
            usage();
            return arg == "--help" ? 0 : 1;
        }
    }

    const auto w = workloads::createWorkload(workload);
    if (!w) {
        std::fprintf(stderr,
                     "unknown workload '%s' (try --list)\n",
                     workload.c_str());
        return 1;
    }
    runtime::PlutoDevice dev(cfg);
    if (elements == 0)
        elements = w->defaultElements(cfg.memory);
    const auto res = w->run(dev, elements);
    const auto rates = w->rates();

    std::printf("workload   %s\n", w->name().c_str());
    std::printf("config     %s on %s, salp=%u, tFAW=%.0f%%%s\n",
                core::designName(cfg.design),
                dram::memoryKindName(cfg.memory), dev.salp(),
                cfg.fawScale * 100,
                cfg.modelRefresh ? ", refresh" : "");
    std::printf("elements   %llu\n",
                static_cast<unsigned long long>(res.elements));
    std::printf("time       %.2f us  (%.4f ns/element)\n",
                res.timeNs * 1e-3, res.nsPerElem());
    std::printf("energy     %.4f mJ  (%.3f pJ/element)\n",
                res.energyPj * 1e-9, res.pjPerElem());
    std::printf("verified   %s\n", res.verified ? "yes" : "NO");
    std::printf("speedup    %.1fx vs CPU, %.2fx vs GPU, %.1fx vs "
                "PnM, %.1fx vs FPGA\n",
                rates.cpu / res.nsPerElem(),
                rates.gpu / res.nsPerElem(),
                rates.pnm / res.nsPerElem(),
                rates.fpga / res.nsPerElem());
    return res.verified ? 0 : 2;
}
