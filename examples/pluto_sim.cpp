/**
 * @file
 * pluto_sim: the scenario engine CLI. Takes a scenario file (see
 * examples/scenarios/), runs the full variant x workload x repeat
 * cross product across a thread pool, prints a per-cell summary
 * table, and writes per-run CSV plus a JSON summary.
 *
 * Usage:
 *   pluto_sim [options] SCENARIO.ini
 *     --threads N   worker threads (default: hardware concurrency)
 *     --out DIR     override the scenario's out_dir
 *     --quiet       suppress per-run progress lines
 *     --list        list registered workloads and exit
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/table.hh"
#include "sim/metrics.hh"
#include "sim/runner.hh"
#include "workloads/workload.hh"

using namespace pluto;

namespace
{

void
usage()
{
    std::printf(
        "usage: pluto_sim [options] SCENARIO.ini\n"
        "  --threads N   worker threads (default: hardware "
        "concurrency)\n"
        "  --out DIR     override the scenario's out_dir\n"
        "  --quiet       suppress per-run progress lines\n"
        "  --list        list registered workloads and exit\n");
}

} // namespace

int
main(int argc, char **argv)
{
    std::string scenarioPath;
    std::string outDir;
    u32 threads = 0;
    bool quiet = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                usage();
                std::exit(1);
            }
            return argv[++i];
        };
        if (arg == "--list") {
            for (const auto &name : workloads::workloadNames())
                std::printf("%s\n", name.c_str());
            return 0;
        } else if (arg == "--threads") {
            threads = static_cast<u32>(std::atoi(next()));
        } else if (arg == "--out") {
            outDir = next();
        } else if (arg == "--quiet") {
            quiet = true;
        } else if (arg == "--help") {
            usage();
            return 0;
        } else if (!arg.empty() && arg.front() == '-') {
            usage();
            return 1;
        } else if (scenarioPath.empty()) {
            scenarioPath = arg;
        } else {
            usage();
            return 1;
        }
    }
    if (scenarioPath.empty()) {
        usage();
        return 1;
    }

    std::string err;
    auto cfg = sim::SimConfig::load(scenarioPath, err);
    if (!cfg) {
        std::fprintf(stderr, "%s: %s\n", scenarioPath.c_str(),
                     err.c_str());
        return 1;
    }
    if (!outDir.empty())
        cfg->outDir = outDir;

    std::printf("scenario   %s (%s)\n", cfg->name.c_str(),
                scenarioPath.c_str());
    std::printf("runs       %llu  (%zu variants x %zu workloads)\n",
                static_cast<unsigned long long>(cfg->totalRuns()),
                cfg->devices.size(), cfg->workloads.size());

    const sim::ScenarioRunner runner(*cfg);
    const auto progress = [&](const sim::RunRecord &r, u64 done,
                              u64 total) {
        std::fprintf(stderr,
                     "[%llu/%llu] %s / %s #%u: %.2f us, %.3f "
                     "pJ/elem, %s (%.0f ms)\n",
                     static_cast<unsigned long long>(done),
                     static_cast<unsigned long long>(total),
                     r.variant.c_str(), r.workload.c_str(), r.repeat,
                     r.result.timeNs * 1e-3, r.result.pjPerElem(),
                     r.result.verified ? "ok" : "VERIFY FAILED",
                     r.wallMs);
    };
    const auto report = runner.run(
        threads, quiet ? sim::ScenarioRunner::Progress() : progress);

    // Per-cell mean table (repeats folded together).
    AsciiTable table({"variant", "workload", "runs", "elements",
                      "ns/elem", "pJ/elem", "vs CPU", "ok"});
    for (const auto &c : sim::MetricsSink::aggregate(report)) {
        table.addRow({c.variant, c.workload, std::to_string(c.runs),
                      std::to_string(c.elements),
                      fmtSig(c.nsPerElem), fmtSig(c.pjPerElem),
                      c.nsPerElem > 0.0
                          ? fmtX(c.rates.cpu / c.nsPerElem)
                          : "-",
                      c.verified ? "yes" : "NO"});
    }
    std::printf("\n%s\n", table.render().c_str());
    std::printf("wall       %.0f ms total\n", report.wallMs);

    std::vector<std::string> written;
    const std::string werr =
        sim::MetricsSink::write(*cfg, report, written);
    if (!werr.empty()) {
        std::fprintf(stderr, "output error: %s\n", werr.c_str());
        return 1;
    }
    for (const auto &p : written)
        std::printf("wrote      %s\n", p.c_str());

    return report.allVerified() ? 0 : 2;
}
