/**
 * @file
 * pluto_sim: the scenario engine CLI. Takes a scenario file (see
 * examples/scenarios/), runs the full variant x workload x repeat
 * cross product across a thread pool, prints a per-cell summary
 * table, and writes per-run CSV plus a JSON summary.
 *
 * With --service, the scenario's [service] sections run instead: the
 * request-level serving simulator (src/serve/) executes every
 * variant x service cell and reports tail-latency/throughput metrics.
 *
 * Usage:
 *   pluto_sim [options] SCENARIO.ini
 *     --threads N     worker threads (default: hardware concurrency)
 *     --out DIR       override the scenario's out_dir
 *     --service       run the [service] sections (serving simulator)
 *     --shard I/N     run only shard I of N (outputs suffixed
 *                     ".shardIofN"; combine shards via --cache-dir
 *                     and a final unsharded pass)
 *     --cache-dir DIR replay finished runs from / append them to a
 *                     JSONL result cache
 *     --deterministic zero wall-clock fields (byte-comparable output)
 *     --quiet         suppress per-run progress lines
 *     --list          list registered workload names and exit
 *     --list-workloads
 *                     print the workload registry table and exit
 */

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>

#include "common/table.hh"
#include "serve/runner.hh"
#include "sim/metrics.hh"
#include "sim/runner.hh"
#include "workloads/workload.hh"

using namespace pluto;

namespace
{

void
usage()
{
    std::printf(
        "usage: pluto_sim [options] SCENARIO.ini\n"
        "  --threads N     worker threads (default: hardware "
        "concurrency)\n"
        "  --out DIR       override the scenario's out_dir\n"
        "  --service       run the [service] sections (serving "
        "simulator)\n"
        "  --shard I/N     run only shard I of N (0-based)\n"
        "  --cache-dir DIR replay/append a JSONL result cache\n"
        "  --deterministic zero wall-clock fields in outputs\n"
        "  --quiet         suppress per-run progress lines\n"
        "  --list          list registered workload names and exit\n"
        "  --list-workloads  print the workload registry table and "
        "exit\n");
}

/** The --list-workloads registry table. */
void
printWorkloadTable()
{
    AsciiTable table({"workload", "default elems (ddr4)",
                      "default elems (3ds)", "cpu ns/elem",
                      "gpu ns/elem", "fpga ns/elem"});
    for (const auto &name : workloads::workloadNames()) {
        const auto w = workloads::createWorkload(name);
        if (!w)
            continue;
        const auto rates = w->rates();
        table.addRow(
            {name,
             std::to_string(
                 w->defaultElements(dram::MemoryKind::Ddr4)),
             std::to_string(
                 w->defaultElements(dram::MemoryKind::Hmc3ds)),
             fmtSig(rates.cpu), fmtSig(rates.gpu),
             fmtSig(rates.fpga)});
    }
    std::printf("%s", table.render().c_str());
}

/**
 * Shared tail of both modes: wall/cache summary lines, shard-suffixed
 * output writing, verification exit code.
 */
int
finishReport(
    const sim::RunOptions &opt, bool sharded, double wallMs,
    u64 cacheHits, u64 cacheMisses, bool allVerified,
    const std::function<std::string(const std::string &suffix,
                                    std::vector<std::string> &written)>
        &write)
{
    std::printf("wall       %.0f ms total\n", wallMs);
    if (!opt.cacheDir.empty()) {
        const u64 total = cacheHits + cacheMisses;
        std::printf("cache_hits=%llu cache_misses=%llu "
                    "hit_rate=%.1f%%\n",
                    static_cast<unsigned long long>(cacheHits),
                    static_cast<unsigned long long>(cacheMisses),
                    total ? 100.0 * cacheHits / total : 0.0);
    }

    std::string suffix;
    if (sharded)
        suffix = ".shard" + std::to_string(opt.shardIndex) + "of" +
                 std::to_string(opt.shardCount);
    std::vector<std::string> written;
    const std::string werr = write(suffix, written);
    if (!werr.empty()) {
        std::fprintf(stderr, "output error: %s\n", werr.c_str());
        return 1;
    }
    for (const auto &p : written)
        std::printf("wrote      %s\n", p.c_str());

    return allVerified ? 0 : 2;
}

/** Batch mode: run the variant x workload x repeat cross product. */
int
runBatch(const sim::SimConfig &cfg, const sim::RunOptions &opt,
         bool sharded, bool quiet)
{
    const sim::ScenarioRunner runner(cfg);
    const auto progress = [&](const sim::RunRecord &r, u64 done,
                              u64 total) {
        std::fprintf(stderr,
                     "[%llu/%llu] %s / %s #%u: %.2f us, %.3f "
                     "pJ/elem, %s (%.0f ms)\n",
                     static_cast<unsigned long long>(done),
                     static_cast<unsigned long long>(total),
                     r.variant.c_str(), r.workload.c_str(), r.repeat,
                     r.result.timeNs * 1e-3, r.result.pjPerElem(),
                     r.result.verified ? "ok" : "VERIFY FAILED",
                     r.wallMs);
    };
    const auto report = runner.run(
        opt, quiet ? sim::ScenarioRunner::Progress() : progress);
    if (report.runs.empty()) {
        std::printf("shard %u/%u holds no runs; nothing to do\n",
                    opt.shardIndex, opt.shardCount);
        return 0;
    }

    // Per-cell mean table (repeats folded together).
    AsciiTable table({"variant", "workload", "runs", "elements",
                      "seed", "ns/elem", "pJ/elem", "vs CPU",
                      "ok"});
    for (const auto &c : sim::MetricsSink::aggregate(report)) {
        table.addRow({c.variant, c.workload, std::to_string(c.runs),
                      std::to_string(c.elements),
                      std::to_string(c.seed),
                      fmtSig(c.nsPerElem), fmtSig(c.pjPerElem),
                      c.nsPerElem > 0.0
                          ? fmtX(c.rates.cpu / c.nsPerElem)
                          : "-",
                      c.verified ? "yes" : "NO"});
    }
    std::printf("\n%s\n", table.render().c_str());
    return finishReport(
        opt, sharded, report.wallMs, report.cacheHits,
        report.cacheMisses, report.allVerified(),
        [&](const std::string &suffix,
            std::vector<std::string> &written) {
            return sim::MetricsSink::write(cfg, report, written,
                                           suffix);
        });
}

/** Service mode: run the variant x service serving simulations. */
int
runService(const sim::SimConfig &cfg, const sim::RunOptions &opt,
           bool sharded, bool quiet)
{
    if (cfg.services.empty()) {
        std::fprintf(stderr,
                     "--service: scenario declares no [service] "
                     "sections\n");
        return 1;
    }

    const serve::ServiceRunner runner(cfg);
    const auto progress = [&](const serve::ServiceRunRecord &r,
                              u64 done, u64 total) {
        std::fprintf(stderr,
                     "[%llu/%llu] %s / %s: %llu req, p99 %.3f ms, "
                     "%.0f req/s, %s\n",
                     static_cast<unsigned long long>(done),
                     static_cast<unsigned long long>(total),
                     r.variant.c_str(), r.service.c_str(),
                     static_cast<unsigned long long>(
                         r.out.requests),
                     r.out.p99Ms, r.out.throughputRps,
                     r.out.verified ? "ok" : "VERIFY FAILED");
    };
    const auto report = runner.run(
        opt, quiet ? serve::ServiceRunner::Progress() : progress);
    if (report.runs.empty()) {
        std::printf("shard %u/%u holds no runs; nothing to do\n",
                    opt.shardIndex, opt.shardCount);
        return 0;
    }

    AsciiTable table({"variant", "service", "policy", "req",
                     "req/s", "batch", "p50 ms", "p99 ms",
                     "p99.9 ms", "util", "ok"});
    for (const auto &r : report.runs)
        table.addRow({r.variant, r.service, r.policy,
                      std::to_string(r.out.requests),
                      fmtSig(r.out.throughputRps),
                      fmtSig(r.out.meanBatch, 3),
                      fmtSig(r.out.p50Ms), fmtSig(r.out.p99Ms),
                      fmtSig(r.out.p999Ms),
                      fmtPct(r.out.utilization),
                      r.out.verified ? "yes" : "NO"});
    std::printf("\n%s\n", table.render().c_str());
    return finishReport(
        opt, sharded, report.wallMs, report.cacheHits,
        report.cacheMisses, report.allVerified(),
        [&](const std::string &suffix,
            std::vector<std::string> &written) {
            return serve::ServiceMetricsSink::write(
                cfg, report.runs, report.wallMs, written, suffix);
        });
}

} // namespace

int
main(int argc, char **argv)
{
    std::string scenarioPath;
    std::string outDir;
    sim::RunOptions opt;
    bool service = false;
    bool sharded = false;
    bool quiet = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                usage();
                std::exit(1);
            }
            return argv[++i];
        };
        if (arg == "--list") {
            for (const auto &name : workloads::workloadNames())
                std::printf("%s\n", name.c_str());
            return 0;
        } else if (arg == "--list-workloads") {
            printWorkloadTable();
            return 0;
        } else if (arg == "--threads") {
            opt.threads = static_cast<u32>(std::atoi(next()));
        } else if (arg == "--out") {
            outDir = next();
        } else if (arg == "--service") {
            service = true;
        } else if (arg == "--shard") {
            const std::string spec = next();
            unsigned idx = 0, cnt = 0;
            char trail = 0;
            if (std::sscanf(spec.c_str(), "%u/%u%c", &idx, &cnt,
                            &trail) != 2) {
                std::fprintf(stderr,
                             "--shard wants I/N (e.g. 0/3), got "
                             "'%s'\n",
                             spec.c_str());
                return 1;
            }
            opt.shardIndex = idx;
            opt.shardCount = cnt;
            sharded = true;
        } else if (arg == "--cache-dir") {
            opt.cacheDir = next();
        } else if (arg == "--deterministic") {
            opt.deterministic = true;
        } else if (arg == "--quiet") {
            quiet = true;
        } else if (arg == "--help") {
            usage();
            return 0;
        } else if (!arg.empty() && arg.front() == '-') {
            usage();
            return 1;
        } else if (scenarioPath.empty()) {
            scenarioPath = arg;
        } else {
            usage();
            return 1;
        }
    }
    if (scenarioPath.empty()) {
        usage();
        return 1;
    }
    const std::string opterr = opt.validate();
    if (!opterr.empty()) {
        std::fprintf(stderr, "--shard: %s\n", opterr.c_str());
        return 1;
    }

    std::string err;
    auto cfg = sim::SimConfig::load(scenarioPath, err);
    if (!cfg) {
        std::fprintf(stderr, "%s: %s\n", scenarioPath.c_str(),
                     err.c_str());
        return 1;
    }
    if (!outDir.empty())
        cfg->outDir = outDir;

    std::printf("scenario   %s (%s)\n", cfg->name.c_str(),
                scenarioPath.c_str());
    if (service)
        std::printf("runs       %llu  (%zu variants x %zu "
                    "services)\n",
                    static_cast<unsigned long long>(
                        cfg->totalServiceRuns()),
                    cfg->devices.size(), cfg->services.size());
    else
        std::printf("runs       %llu  (%zu variants x %zu "
                    "workloads)\n",
                    static_cast<unsigned long long>(cfg->totalRuns()),
                    cfg->devices.size(), cfg->workloads.size());
    if (sharded)
        std::printf("shard      %u/%u\n", opt.shardIndex,
                    opt.shardCount);

    return service ? runService(*cfg, opt, sharded, quiet)
                   : runBatch(*cfg, opt, sharded, quiet);
}
