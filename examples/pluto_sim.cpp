/**
 * @file
 * pluto_sim: the campaign CLI. Takes a scenario file (see
 * examples/scenarios/) and runs it in one of the registered campaign
 * modes — all sharing the campaign core's thread-pool fan-out,
 * sharding, JSONL caching and deterministic output discipline (see
 * src/campaign/):
 *
 *   (default)  batch    variant x workload x repeat simulation grid
 *   --service  service  request-level serving simulator (src/serve/)
 *   --nn       nn       quantized LeNet-5 inference grid (src/nn/)
 *
 * All flag plumbing lives in campaign/cli; this file only registers
 * the modes: each contributes its help text, banner, progress line,
 * summary table and output sink. `pluto_sim --help` enumerates every
 * mode from this registry.
 */

#include <cstdio>

#include "campaign/cli.hh"
#include "common/emit.hh"
#include "common/table.hh"
#include "nn/campaign.hh"
#include "nn/pluto_qnn.hh"
#include "serve/runner.hh"
#include "sim/metrics.hh"
#include "sim/runner.hh"

using namespace pluto;
using campaign::CliInvocation;
using campaign::finishCampaign;

namespace
{

/** Shared "shard holds no cells" short-circuit. */
bool
emptyShard(std::size_t cells, const CliInvocation &inv)
{
    if (cells)
        return false;
    std::printf("shard %u/%u holds no runs; nothing to do\n",
                inv.opt.shardIndex, inv.opt.shardCount);
    return true;
}

/** Batch mode: run the variant x workload x repeat cross product. */
int
runBatch(const sim::SimConfig &cfg, const CliInvocation &inv)
{
    if (cfg.workloads.empty()) {
        std::fprintf(stderr,
                     "batch mode: scenario declares no [workload] "
                     "sections (nn-only scenario? use --nn)\n");
        return 1;
    }
    const sim::ScenarioRunner runner(cfg);
    const auto progress = [&](const sim::RunRecord &r, u64 done,
                              u64 total) {
        std::fprintf(stderr,
                     "[%llu/%llu] %s / %s #%u: %.2f us, %.3f "
                     "pJ/elem, %s (%.0f ms)\n",
                     static_cast<unsigned long long>(done),
                     static_cast<unsigned long long>(total),
                     r.variant.c_str(), r.workload.c_str(), r.repeat,
                     r.result.timeNs * 1e-3, r.result.pjPerElem(),
                     r.result.verified ? "ok" : "VERIFY FAILED",
                     r.wallMs);
    };
    const auto report = runner.run(
        inv.opt,
        inv.quiet ? sim::ScenarioRunner::Progress() : progress);
    if (emptyShard(report.runs.size(), inv))
        return 0;

    // Per-cell mean table (repeats folded together).
    AsciiTable table({"variant", "workload", "runs", "elements",
                      "seed", "ns/elem", "pJ/elem", "vs CPU", "ok"});
    for (const auto &c : sim::MetricsSink::aggregate(report)) {
        table.addRow({c.variant, c.workload, std::to_string(c.runs),
                      std::to_string(c.elements),
                      std::to_string(c.seed), fmtSig(c.nsPerElem),
                      fmtSig(c.pjPerElem),
                      c.nsPerElem > 0.0
                          ? fmtX(c.rates.cpu / c.nsPerElem)
                          : "-",
                      c.verified ? "yes" : "NO"});
    }
    std::printf("\n%s\n", table.render().c_str());
    return finishCampaign(
        inv,
        {report.wallMs, report.cacheHits, report.cacheMisses},
        report.allVerified(),
        [&](const std::string &suffix,
            std::vector<std::string> &written) {
            return sim::MetricsSink::write(cfg, report, written,
                                           suffix);
        });
}

/** Service mode: run the variant x service serving simulations. */
int
runService(const sim::SimConfig &cfg, const CliInvocation &inv)
{
    if (cfg.services.empty()) {
        std::fprintf(stderr,
                     "--service: scenario declares no [service] "
                     "sections\n");
        return 1;
    }
    // An nn-only scenario (no [workload] request mix) is rejected by
    // ServiceRunner::run itself, covering every caller.

    const serve::ServiceRunner runner(cfg);
    const auto progress = [&](const serve::ServiceRunRecord &r,
                              u64 done, u64 total) {
        std::fprintf(stderr,
                     "[%llu/%llu] %s / %s: %llu req, p99 %.3f ms, "
                     "%.0f req/s, %s\n",
                     static_cast<unsigned long long>(done),
                     static_cast<unsigned long long>(total),
                     r.variant.c_str(), r.service.c_str(),
                     static_cast<unsigned long long>(r.out.requests),
                     r.out.p99Ms, r.out.throughputRps,
                     r.out.verified ? "ok" : "VERIFY FAILED");
    };
    const auto report = runner.run(
        inv.opt,
        inv.quiet ? serve::ServiceRunner::Progress() : progress);
    if (emptyShard(report.runs.size(), inv))
        return 0;

    AsciiTable table({"variant", "service", "policy", "req", "req/s",
                      "batch", "p50 ms", "p99 ms", "p99.9 ms", "util",
                      "ok"});
    for (const auto &r : report.runs)
        table.addRow({r.variant, r.service, r.policy,
                      std::to_string(r.out.requests),
                      fmtSig(r.out.throughputRps),
                      fmtSig(r.out.meanBatch, 3),
                      fmtSig(r.out.p50Ms), fmtSig(r.out.p99Ms),
                      fmtSig(r.out.p999Ms), fmtPct(r.out.utilization),
                      r.out.verified ? "yes" : "NO"});
    std::printf("\n%s\n", table.render().c_str());
    return finishCampaign(
        inv,
        {report.wallMs, report.cacheHits, report.cacheMisses},
        report.allVerified(),
        [&](const std::string &suffix,
            std::vector<std::string> &written) {
            std::string err = serve::ServiceMetricsSink::write(
                cfg, report.runs, report.wallMs, written, suffix);
            if (!err.empty())
                return err;
            // Side-band analysis files: the data is computed (and
            // cached) unconditionally, the flags only choose whether
            // these files appear. Sharded runs get the same suffix
            // as the main outputs.
            if (!inv.tailReportPath.empty()) {
                const std::string path =
                    inv.tailReportPath + suffix;
                err = writeTextFile(
                    path, serve::ServiceMetricsSink::renderTailReport(
                              cfg, report.runs));
                if (!err.empty())
                    return err;
                written.push_back(path);
            }
            if (!inv.timeseriesPath.empty()) {
                const std::string path =
                    inv.timeseriesPath + suffix;
                err = writeTextFile(
                    path,
                    serve::ServiceMetricsSink::renderTimeseriesCsv(
                        cfg, report.runs));
                if (!err.empty())
                    return err;
                written.push_back(path);
            }
            return std::string();
        });
}

/** NN mode: run the variant x nn inference grid. */
int
runNn(const sim::SimConfig &cfg, const CliInvocation &inv)
{
    if (cfg.nnCells.empty()) {
        std::fprintf(stderr,
                     "--nn: scenario declares no [nn] sections\n");
        return 1;
    }

    const nn::NnRunner runner(cfg);
    const auto progress = [&](const nn::NnRunRecord &r, u64 done,
                              u64 total) {
        std::fprintf(stderr,
                     "[%llu/%llu] %s / %s: %.1f us/inf, %.2f "
                     "uJ/inf, acc %.2f, %s\n",
                     static_cast<unsigned long long>(done),
                     static_cast<unsigned long long>(total),
                     r.variant.c_str(), r.cell.c_str(),
                     r.out.nsPerInference() * 1e-3,
                     r.out.pjPerInference() * 1e-6, r.out.accuracy,
                     r.out.verified ? "ok" : "VERIFY FAILED");
    };
    const auto report = runner.run(
        inv.opt, inv.quiet ? nn::NnRunner::Progress() : progress);
    if (emptyShard(report.runs.size(), inv))
        return 0;

    AsciiTable table({"variant", "cell", "bits", "images", "us/inf",
                      "uJ/inf", "acc", "vs CPU", "ok"});
    for (const auto &r : report.runs) {
        const double nsInf = r.out.nsPerInference();
        const auto hosts = nn::hostQnnCosts(r.bits, r.out.macs);
        const double cpuNs = hosts.empty() ? 0.0 : hosts[0].timeNs;
        table.addRow({r.variant, r.cell, std::to_string(r.bits),
                      std::to_string(r.out.images),
                      fmtSig(nsInf * 1e-3),
                      fmtSig(r.out.pjPerInference() * 1e-6),
                      fmtSig(r.out.accuracy, 3),
                      nsInf > 0.0 ? fmtX(cpuNs / nsInf) : "-",
                      r.out.verified ? "yes" : "NO"});
    }
    std::printf("\n%s\n", table.render().c_str());
    return finishCampaign(
        inv,
        {report.wallMs, report.cacheHits, report.cacheMisses},
        report.allVerified(),
        [&](const std::string &suffix,
            std::vector<std::string> &written) {
            return nn::NnMetricsSink::write(cfg, report, written,
                                            suffix);
        });
}

} // namespace

int
main(int argc, char **argv)
{
    const std::vector<campaign::Mode> modes = {
        {"batch",
         "",
         "the variant x workload x repeat simulation grid",
         {"reads [variant]/[workload] sections (sweepable)"},
         [](const sim::SimConfig &cfg) {
             char buf[96];
             std::snprintf(buf, sizeof(buf),
                           "%llu  (%zu variants x %zu workloads)",
                           static_cast<unsigned long long>(
                               cfg.totalRuns()),
                           cfg.devices.size(), cfg.workloads.size());
             return std::string(buf);
         },
         runBatch},
        {"service",
         "--service",
         "the request-level serving simulator (tail latency, "
         "batching policies)",
         {"reads [service] sections; [workload] entries form the",
          "request mix (weight/tenant/slo_ms keys); slo_ms,",
          "slo_target, tail_quantile and timeseries_ms drive the",
          "SLO tracking and --tail-report/--timeseries outputs"},
         [](const sim::SimConfig &cfg) {
             char buf[96];
             std::snprintf(buf, sizeof(buf),
                           "%llu  (%zu variants x %zu services)",
                           static_cast<unsigned long long>(
                               cfg.totalServiceRuns()),
                           cfg.devices.size(), cfg.services.size());
             return std::string(buf);
         },
         runService},
        {"nn",
         "--nn",
         "the quantized LeNet-5 inference grid (Table 7 workload)",
         {"reads [nn] sections: bits (1|4), images, seed (all",
          "sweepable)"},
         [](const sim::SimConfig &cfg) {
             char buf[96];
             std::snprintf(buf, sizeof(buf),
                           "%llu  (%zu variants x %zu nn cells)",
                           static_cast<unsigned long long>(
                               cfg.totalNnRuns()),
                           cfg.devices.size(), cfg.nnCells.size());
             return std::string(buf);
         },
         runNn},
    };
    return campaign::cliMain(argc, argv, modes);
}
