/**
 * @file
 * Quickstart: the paper's Figure 3 example — store the first four
 * prime numbers in an in-DRAM LUT and bulk-query them — then a first
 * real operation (8-bit exponentiation, which no prior PuM supports).
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "runtime/device.hh"

using namespace pluto;
using namespace pluto::runtime;

int
main()
{
    // A pLUTo-BSA device on DDR4-2400 with the paper's default
    // 16-subarray parallelism.
    PlutoDevice dev;

    // --- Figure 3: the primes LUT ---
    const core::Lut primes("primes", /*index_bits=*/2, /*elem_bits=*/8,
                           {2, 3, 5, 7});
    const LutHandle lut = dev.loadLut(primes);

    // Query: return the {2nd, 1st, 2nd, 4th} prime numbers.
    const VecHandle in = dev.alloc(4, 8);
    const VecHandle out = dev.alloc(4, 8);
    dev.write(in, std::vector<u64>{1, 0, 1, 3});
    dev.lutOp(out, in, lut);

    std::printf("LUT query input  [1, 0, 1, 3]\n");
    std::printf("LUT query output [");
    for (const u64 v : dev.read(out))
        std::printf("%llu ", static_cast<unsigned long long>(v));
    std::printf("]  (expected [3 2 3 7])\n\n");

    // --- A complex operation: 3^x mod 256 over a whole vector ---
    const u64 n = 100000;
    const LutHandle exp_lut = dev.loadLut("exp3mod256");
    const VecHandle xs = dev.alloc(n, 8);
    const VecHandle ys = dev.alloc(n, 8);
    std::vector<u64> values(n);
    for (u64 i = 0; i < n; ++i)
        values[i] = i & 0xff;
    dev.write(xs, values);

    dev.resetStats();
    dev.lutOp(ys, xs, exp_lut);
    const auto stats = dev.stats();

    const auto result = dev.read(ys);
    std::printf("Exponentiation of %llu elements in-DRAM:\n",
                static_cast<unsigned long long>(n));
    std::printf("  3^10 mod 256 = %llu (expected 169)\n",
                static_cast<unsigned long long>(result[10]));
    std::printf("  simulated time   %.2f us\n", stats.timeNs * 1e-3);
    std::printf("  simulated energy %.4f mJ\n", stats.energyMj());
    std::printf("  DRAM activations %.0f\n",
                stats.counters.get("dram.acts"));
    return 0;
}
