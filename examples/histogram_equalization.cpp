/**
 * @file
 * Histogram equalization: a classic image operation that splits
 * naturally across the host and pLUTo — the histogram/CDF is a
 * serial reduction (host, like the paper's CRC combine), while
 * applying the resulting 8-bit remapping LUT to every pixel is a
 * single bulk pLUTo LUT Query. Demonstrates Lut::fromFunction with a
 * data-derived (first-time-generated) LUT, Section 6.5's generation
 * path.
 */

#include <array>
#include <cstdio>

#include "common/random.hh"
#include "runtime/device.hh"

using namespace pluto;
using namespace pluto::runtime;

int
main()
{
    // A synthetic low-contrast image: values clustered in [90, 170).
    const u64 pixels = 1 << 20;
    Rng rng(7);
    std::vector<u64> image(pixels);
    for (auto &p : image)
        p = 90 + (rng.below(40) + rng.below(40));

    // Host: histogram -> CDF -> equalization map (serial reduction).
    std::array<u64, 256> hist{};
    for (const u64 p : image)
        ++hist[p];
    std::array<u64, 256> cdf{};
    u64 acc = 0;
    u64 cdf_min = 0;
    for (int v = 0; v < 256; ++v) {
        acc += hist[v];
        cdf[v] = acc;
        if (cdf_min == 0 && hist[v])
            cdf_min = acc;
    }
    auto equalize = [&](u64 v) {
        return (cdf[v] - cdf_min) * 255 / (pixels - cdf_min);
    };

    // pLUTo: first-time-generate the data-derived LUT, then one bulk
    // query remaps the whole image.
    DeviceConfig cfg;
    cfg.loadMethod = core::LutLoadMethod::FirstTimeGeneration;
    PlutoDevice dev(cfg);
    const auto lut =
        dev.loadLut(core::Lut::fromFunction("equalize", 8, 8, equalize));
    const auto in = dev.alloc(pixels, 8);
    const auto out = dev.alloc(pixels, 8);
    dev.write(in, image);
    // Charge the host-side reduction like the paper charges the CRC
    // combine: ~1 ns per pixel of histogramming at CPU power.
    dev.resetStats();
    dev.hostWork(1.0 * pixels, units::energyFromPower(30.0, pixels));
    dev.lutOp(out, in, lut);
    const auto stats = dev.stats();

    // Verify and report the contrast stretch.
    const auto result = dev.read(out);
    u64 errors = 0, lo = 255, hi = 0;
    for (u64 i = 0; i < pixels; ++i) {
        errors += result[i] != equalize(image[i]);
        lo = std::min(lo, result[i]);
        hi = std::max(hi, result[i]);
    }
    std::printf("Equalized %llu pixels in-DRAM: %llu errors\n",
                static_cast<unsigned long long>(pixels),
                static_cast<unsigned long long>(errors));
    std::printf("  input range  [90, 169] -> output range [%llu, "
                "%llu]\n",
                static_cast<unsigned long long>(lo),
                static_cast<unsigned long long>(hi));
    std::printf("  simulated time %.1f us (host histogram %.1f us + "
                "bulk query), energy %.3f mJ\n",
                stats.timeNs * 1e-3,
                stats.counters.get("host.ns") * 1e-3,
                stats.energyMj());
    return 0;
}
