/**
 * @file
 * Quantized-neural-network example (the Section 9 case study):
 * classify synthetic MNIST digits with 1-bit and 4-bit LeNet-5 and
 * report the simulated pLUTo inference cost per image, including the
 * XNOR-popcount identity that the 1-bit in-DRAM mapping rests on.
 */

#include <cstdio>

#include "nn/pluto_qnn.hh"

using namespace pluto;
using namespace pluto::nn;

int
main()
{
    MnistSynth synth;
    const auto digits = synth.batch(10);

    for (const u32 bits : {1u, 4u}) {
        const LeNet5 net(bits);
        runtime::PlutoDevice dev;
        const auto cost = plutoQnnCost(dev, net);
        std::printf("%u-bit LeNet-5 (%llu MACs): %0.1f us, %.4f mJ "
                    "per inference on pLUTo-BSA\n",
                    bits,
                    static_cast<unsigned long long>(net.totalMacs()),
                    cost.timeNs * 1e-3, cost.energyPj * 1e-9);
        std::printf("  classifications:");
        for (const auto &img : digits)
            std::printf(" %u", net.classify(img));
        std::printf("  (labels 0-9, untrained weights)\n");
    }

    // The identity behind the 1-bit mapping: sum of +-1 products ==
    // n - 2 * popcount(a ^ w).
    const std::vector<i32> a = {1, -1, 1, 1, -1};
    const std::vector<i32> w = {1, 1, -1, 1, -1};
    const std::vector<u8> ab = {1, 0, 1, 1, 0};
    const std::vector<u8> wb = {1, 1, 0, 1, 0};
    std::printf("\nXNOR-popcount identity: direct %d == in-DRAM form "
                "%d\n",
                binaryDotDirect(a, w), binaryDotXnorPopcount(ab, wb));
    return 0;
}
