/**
 * @file
 * DSP example: in-DRAM waveform synthesis with trigonometric LUTs —
 * the complex-operation class Section 5.7 positions pLUTo for
 * ("relying on ... pLUTo for trigonometric functions"). A phase ramp
 * maps through the sinQ7 LUT (one bulk query), then an envelope is
 * applied with the Q1.7 point-wise multiplier (api_pluto_mulq),
 * producing an amplitude-modulated tone verified against
 * double-precision math within quantization error.
 */

#include <cmath>
#include <cstdio>

#include "runtime/device.hh"

using namespace pluto;
using namespace pluto::runtime;

int
main()
{
    const u64 samples = 1 << 18;
    const u32 tone_step = 5;    // phase increment per sample
    const u32 env_step = 1;     // slow envelope phase increment

    PlutoDevice dev;
    const auto sin_lut = dev.loadLut("sinq7");

    // Phase ramps (host-generated index streams; the adds that build
    // them in-DRAM are the ADD workloads elsewhere in this repo).
    std::vector<u64> tone_phase(samples), env_phase(samples);
    for (u64 i = 0; i < samples; ++i) {
        tone_phase[i] = (i * tone_step) & 0xff;
        env_phase[i] = (i * env_step / 64) & 0x7f; // half turn: >= 0
    }

    // sin(tone) via one bulk query per row of samples.
    const auto vtone = dev.alloc(samples, 8);
    const auto vwave = dev.alloc(samples, 8);
    dev.write(vtone, tone_phase);
    dev.resetStats();
    dev.lutOp(vwave, vtone, sin_lut);

    // Envelope = sin(env) >= 0; modulate via Q1.7 multiply. The
    // operands are packed into 16-bit slots by api_pluto_mulq.
    const auto venv_p = dev.alloc(samples, 8);
    dev.write(venv_p, env_phase);
    const auto venv = dev.alloc(samples, 8);
    dev.lutOp(venv, venv_p, sin_lut);

    const auto a = dev.alloc(samples, 16);
    const auto b = dev.alloc(samples, 16);
    const auto out = dev.alloc(samples, 16);
    dev.write(a, dev.read(vwave));
    dev.write(b, dev.read(venv));
    dev.apiMulQ(out, a, b, 8);
    const auto stats = dev.stats();

    // Verify against double-precision synthesis.
    const auto got = dev.read(out);
    double max_err = 0.0;
    for (u64 i = 0; i < samples; ++i) {
        const double tone =
            std::sin(2.0 * M_PI * tone_phase[i] / 256.0);
        const double env =
            std::sin(2.0 * M_PI * env_phase[i] / 256.0);
        const double expect = tone * env;
        const double q = static_cast<i8>(got[i]) / 128.0;
        max_err = std::max(max_err, std::fabs(q - expect));
    }

    std::printf("Synthesized %llu amplitude-modulated samples "
                "in-DRAM\n",
                static_cast<unsigned long long>(samples));
    std::printf("  max error vs double-precision: %.4f "
                "(Q1.7 quantization bound ~0.02)\n",
                max_err);
    std::printf("  simulated time %.1f us, energy %.3f mJ\n",
                stats.timeNs * 1e-3, stats.energyMj());
    return max_err < 0.03 ? 0 : 1;
}
