/**
 * @file
 * The paper's end-to-end Figure 5 example: out = A * B + C over
 * 2-bit operands, expressed three ways —
 *   1. reference C code (host),
 *   2. the pLUTo Library API (api_pluto_mul / api_pluto_add),
 *   3. the pLUTo Compiler: a dataflow graph lowered to pLUTo ISA
 *      instructions (with the operand-alignment shifts/merges the
 *      compiler inserts), executed by the pLUTo Controller.
 * Prints the compiled program's disassembly, mirroring Figure 5c.
 */

#include <cstdio>

#include "compiler/compiler.hh"
#include "compiler/reference.hh"
#include "runtime/device.hh"

using namespace pluto;
using namespace pluto::runtime;

int
main()
{
    const u64 n = 1024;
    std::vector<u64> va(n), vb(n), vc(n);
    for (u64 i = 0; i < n; ++i) {
        va[i] = i % 4;        // 2-bit operands
        vb[i] = (i / 4) % 4;
        vc[i] = (i / 16) % 16; // 4-bit addend
    }

    // 1. Reference C code.
    std::vector<u64> expect(n);
    for (u64 i = 0; i < n; ++i)
        expect[i] = va[i] * vb[i] + vc[i];

    // 2. pLUTo Library API.
    {
        PlutoDevice dev;
        const auto a = pluto_malloc(dev, n, 4);
        const auto b = pluto_malloc(dev, n, 4);
        const auto tmp = pluto_malloc(dev, n, 4);
        dev.write(a, va);
        dev.write(b, vb);
        api_pluto_mul(dev, a, b, tmp, 2); // 4-bit product

        // Widen to 8-bit slots for the 4-bit addition.
        const auto prod8 = pluto_malloc(dev, n, 8);
        const auto c8 = pluto_malloc(dev, n, 8);
        const auto out = pluto_malloc(dev, n, 8);
        dev.write(prod8, dev.read(tmp));
        dev.write(c8, vc);
        api_pluto_add(dev, prod8, c8, out, 4);

        const auto got = dev.read(out);
        u64 errors = 0;
        for (u64 i = 0; i < n; ++i)
            errors += got[i] != expect[i];
        std::printf("pLUTo Library API: %llu/%llu correct\n",
                    static_cast<unsigned long long>(n - errors),
                    static_cast<unsigned long long>(n));
    }

    // 3. pLUTo Compiler.
    {
        compiler::Graph g(n);
        const auto a = g.input("A", 4);
        const auto b = g.input("B", 4);
        const auto prod = g.mul(a, b, 2);
        g.markOutput(prod, "prod");
        const auto compiled = compiler::compile(g);

        std::printf("\nCompiled pLUTo ISA program (Figure 5c style):\n");
        std::printf("%s", compiled.program.disassemble().c_str());
        std::printf("row registers: %u physical (naive would use %u)\n",
                    compiled.physicalRowRegs, compiled.naiveRowRegs);

        // Execute through the Controller and compare with the
        // compiler's reference evaluator.
        PlutoDevice dev;
        dev.controller().execute(compiled.program);
        dev.controller().writeValues(compiled.inputRegs.at("A"), va);
        dev.controller().writeValues(compiled.inputRegs.at("B"), vb);
        // Re-run the compute portion now that inputs are written: the
        // program is a straight line, so simply execute the non-alloc
        // instructions again.
        for (const auto &instr : compiled.program.instructions()) {
            if (instr.op != isa::Opcode::RowAlloc &&
                instr.op != isa::Opcode::SubarrayAlloc)
                dev.controller().execute(instr);
        }
        auto got = dev.controller().readValues(
            compiled.outputRegs.at("prod"));
        got.resize(n);

        auto &lib = dev.library();
        const auto ref = compiler::evaluate(
            g, {{"A", va}, {"B", vb}},
            [&](const std::string &name) -> const core::Lut & {
                return lib.get(name);
            },
            dev.geometry().rowBytes);

        u64 errors = 0;
        for (u64 i = 0; i < n; ++i)
            errors += got[i] != ref.at("prod")[i];
        std::printf("Compiler + Controller: %llu/%llu match the "
                    "reference evaluator\n",
                    static_cast<unsigned long long>(n - errors),
                    static_cast<unsigned long long>(n));
    }
    return 0;
}
